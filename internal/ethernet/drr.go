package ethernet

import (
	"fmt"

	"repro/internal/simtime"
)

// DRRQueue is a Deficit Round Robin scheduler over the four priority
// classes — the classic fair alternative to the paper's strict-priority
// multiplexer (Shreedhar & Varghese 1996). Each class i has a quantum φᵢ
// (bytes); in every round a backlogged class may send up to its
// accumulated deficit, which grows by φᵢ per visit. DRR guarantees each
// class a bandwidth share φᵢ/Σφ and — unlike strict priority — cannot
// starve any class, at the price of a much larger latency term for the
// urgent class. The ablation experiment A8 quantifies that trade-off
// against the paper's choice.
//
// DRR is a latency-rate server (Stiliadis & Varma 1998): class i is
// guaranteed the rate ρᵢ = φᵢ/F·C with latency θᵢ = (3F − 2φᵢ)/C, F = Σφ,
// which is what analysis.DRRBound builds on.
type DRRQueue struct {
	classes  [NumClasses]fifo
	quantum  [NumClasses]int // bytes
	deficit  [NumClasses]int // bytes
	cur      int
	granted  bool // whether cur has received its quantum this visit
	capacity simtime.Size
	drops    [NumClasses]DropStats
	maxSeen  [NumClasses]simtime.Size
	// maxTotal is the aggregate-occupancy high-water mark (the per-class
	// marks peak at different instants; see PriorityQueue.MaxBacklog).
	maxTotal simtime.Size
}

// NewDRRQueue creates a DRR scheduler with per-class quanta in bytes. For
// the latency-rate bound to hold, every quantum must be at least the
// class's maximum frame size; the constructor enforces the global maximum
// (a tagged full frame) as a floor. perClassCapacity 0 means unbounded.
func NewDRRQueue(quanta [NumClasses]int, perClassCapacity simtime.Size) *DRRQueue {
	for i, q := range quanta {
		if q < MaxFrameBytes+VLANTagBytes {
			panic(fmt.Sprintf("ethernet: DRR quantum %d for class %d below one max frame (%d)",
				q, i, MaxFrameBytes+VLANTagBytes))
		}
	}
	if perClassCapacity < 0 {
		panic("ethernet: negative capacity")
	}
	return &DRRQueue{quantum: quanta, capacity: perClassCapacity}
}

// Enqueue implements Queue, classifying by PCP like PriorityQueue.
func (q *DRRQueue) Enqueue(f *Frame) bool {
	class := NumClasses - 1
	if f.Tagged {
		class = ClassOfPCP(f.Priority)
	}
	sz := simtime.Bytes(f.FrameBytes())
	if q.capacity > 0 && q.classes[class].backlog+sz > q.capacity {
		q.drops[class].Frames++
		q.drops[class].Bytes += f.FrameBytes()
		return false
	}
	q.classes[class].push(f)
	if q.classes[class].backlog > q.maxSeen[class] {
		q.maxSeen[class] = q.classes[class].backlog
	}
	if b := q.Backlog(); b > q.maxTotal {
		q.maxTotal = b
	}
	return true
}

// Dequeue implements Queue with the DRR discipline: serve the current
// class while its deficit lasts, then rotate. A class's deficit resets
// when it goes idle (the standard rule that keeps DRR's fairness bound).
func (q *DRRQueue) Dequeue() *Frame {
	if q.Len() == 0 {
		return nil
	}
	// At most two full rotations: one to grant quanta, one to serve (a
	// single grant always suffices for frames ≤ quantum).
	for visits := 0; visits < 2*NumClasses+1; visits++ {
		c := &q.classes[q.cur]
		if c.empty() {
			q.deficit[q.cur] = 0
			q.advance()
			continue
		}
		if !q.granted {
			q.deficit[q.cur] += q.quantum[q.cur]
			q.granted = true
		}
		head := c.frames[c.head]
		if q.deficit[q.cur] >= head.FrameBytes() {
			q.deficit[q.cur] -= head.FrameBytes()
			f := c.pop()
			if c.empty() {
				q.deficit[q.cur] = 0
				q.advance()
			}
			return f
		}
		q.advance()
	}
	panic("ethernet: DRR made no progress — quantum invariant broken")
}

// advance rotates to the next class, marking it un-granted.
func (q *DRRQueue) advance() {
	q.cur = (q.cur + 1) % NumClasses
	q.granted = false
}

// Len implements Queue.
func (q *DRRQueue) Len() int {
	n := 0
	for c := range q.classes {
		n += q.classes[c].length()
	}
	return n
}

// Backlog implements Queue.
func (q *DRRQueue) Backlog() simtime.Size {
	var b simtime.Size
	for c := range q.classes {
		b += q.classes[c].backlog
	}
	return b
}

// Drops implements Queue.
func (q *DRRQueue) Drops() DropStats {
	var d DropStats
	for _, cd := range q.drops {
		d.Frames += cd.Frames
		d.Bytes += cd.Bytes
	}
	return d
}

// MaxBacklog implements Queue: the true total-occupancy high-water mark
// (NOT the sum of per-class marks, which peak at different instants).
func (q *DRRQueue) MaxBacklog() simtime.Size { return q.maxTotal }

// ClassBacklog returns one class's backlog.
func (q *DRRQueue) ClassBacklog(class int) simtime.Size { return q.classes[class].backlog }

// ClassMaxBacklog returns the per-class high-water mark.
func (q *DRRQueue) ClassMaxBacklog(class int) simtime.Size { return q.maxSeen[class] }
