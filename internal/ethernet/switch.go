package ethernet

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/simtime"
)

// QueueKind selects the output-port discipline of a switch — the two
// approaches the paper compares.
type QueueKind int

const (
	// QueueFCFS is a single FIFO per output port (approach 1: traffic
	// shaping only).
	QueueFCFS QueueKind = iota
	// QueuePriority is the 4-class strict-priority discipline of 802.1p
	// (approach 2: shaping + priority handling).
	QueuePriority
)

// String returns the kind name.
func (k QueueKind) String() string {
	switch k {
	case QueueFCFS:
		return "fcfs"
	case QueuePriority:
		return "priority"
	default:
		return fmt.Sprintf("QueueKind(%d)", int(k))
	}
}

// SwitchConfig parameterizes a store-and-forward switch.
type SwitchConfig struct {
	// Name identifies the switch in traces.
	Name string
	// RelayLatency is the technological latency t_techno: the fixed
	// worst-case delay between complete reception of a frame on an input
	// port and its availability in the output queue (lookup, fabric
	// crossing). The paper carries it as an additive bound.
	RelayLatency simtime.Duration
	// Kind selects the output queue discipline.
	Kind QueueKind
	// QueueCapacity is the byte capacity per output FIFO (per class for
	// QueuePriority); 0 means unbounded.
	QueueCapacity simtime.Size
	// QueueCapacities optionally overrides QueueCapacity per output port
	// (keyed by port id) — analysis-derived buffer dimensioning sizes each
	// multiplexing point individually. Missing ports fall back to
	// QueueCapacity.
	QueueCapacities map[int]simtime.Size
}

// Switch is a full-duplex store-and-forward Ethernet switch: frames are
// received completely on an input port, looked up in the forwarding
// database, moved across the fabric within RelayLatency, and queued on the
// destination output port.
type Switch struct {
	cfg  SwitchConfig
	sim  *des.Simulator
	port map[int]*swPort
	ids  []int // attached port ids, ascending, so flood replication order is deterministic
	fdb  map[Addr]int

	// relay is the FIFO of frames crossing the fabric. Every crossing
	// takes exactly RelayLatency, so relay completions fire in submission
	// order and the single pre-bound relayFn handler always consumes the
	// head — no per-frame closure.
	relay     []relayEntry
	relayHead int
	relayFn   des.Handler

	// Flooded counts frames replicated to all ports for lack of an FDB
	// entry (or broadcast destination).
	Flooded int
}

// relayEntry is one frame mid-fabric, bound for an output port.
type relayEntry struct {
	f   *Frame
	out *Port
}

type swPort struct {
	id  int
	out *Port
}

// NewSwitch creates an empty switch; attach devices with AttachPort.
func NewSwitch(sim *des.Simulator, cfg SwitchConfig) *Switch {
	if sim == nil {
		panic("ethernet: nil simulator")
	}
	if cfg.RelayLatency < 0 {
		panic(fmt.Sprintf("ethernet: negative relay latency %v", cfg.RelayLatency))
	}
	s := &Switch{cfg: cfg, sim: sim, port: map[int]*swPort{}, fdb: map[Addr]int{}}
	s.relayFn = s.relayPop
	// Presize the relay ring past its compaction threshold so the steady
	// state is reached in one allocation.
	s.relay = make([]relayEntry, 0, 16)
	return s
}

// Config returns the switch configuration.
func (s *Switch) Config() SwitchConfig { return s.cfg }

// newQueue builds the output queue of port id per the configured kind,
// honoring the per-port capacity override.
func (s *Switch) newQueue(id int) Queue {
	capacity := s.cfg.QueueCapacity
	if c, ok := s.cfg.QueueCapacities[id]; ok {
		capacity = c
	}
	switch s.cfg.Kind {
	case QueueFCFS:
		return NewFCFSQueue(capacity)
	case QueuePriority:
		return NewPriorityQueue(capacity)
	default:
		panic(fmt.Sprintf("ethernet: unknown queue kind %v", s.cfg.Kind))
	}
}

// AttachPort creates switch port id with a downlink of the given rate and
// propagation delay toward a device, delivering received frames to
// deliver. It returns the function the device calls to hand the switch a
// fully received frame on that port (the uplink's deliver callback).
func (s *Switch) AttachPort(id int, rate simtime.Rate, prop simtime.Duration, deliver func(*Frame)) (ingress func(*Frame)) {
	if _, dup := s.port[id]; dup {
		panic(fmt.Sprintf("ethernet: duplicate switch port %d", id))
	}
	name := fmt.Sprintf("%s.port%d", s.cfg.Name, id)
	p := &swPort{id: id}
	p.out = NewPort(name, s.sim, s.newQueue(id), rate, prop, deliver)
	s.port[id] = p
	s.ids = append(s.ids, id)
	sort.Ints(s.ids)
	return func(f *Frame) { s.receive(id, f) }
}

// Learn installs a static FDB entry mapping addr to port id.
func (s *Switch) Learn(addr Addr, portID int) {
	if _, ok := s.port[portID]; !ok {
		panic(fmt.Sprintf("ethernet: Learn on unknown port %d", portID))
	}
	s.fdb[addr] = portID
}

// Lookup returns the FDB entry for addr.
func (s *Switch) Lookup(addr Addr) (portID int, ok bool) {
	id, ok := s.fdb[addr]
	return id, ok
}

// receive handles a fully received frame on input port in: source learning,
// destination lookup, and relay to the output queue after RelayLatency.
//
//rtlint:hotpath
func (s *Switch) receive(in int, f *Frame) {
	// Source learning, as a real switch does.
	if !f.Src.IsMulticast() {
		s.fdb[f.Src] = in
	}
	if !f.Dst.IsBroadcast() {
		if id, ok := s.fdb[f.Dst]; ok {
			if id != in { // never reflect back out the ingress port
				s.relayTo(s.port[id].out, f)
			}
			return
		}
	}
	// Flood: broadcast or unknown unicast. Replicate in ascending port
	// order — map iteration order here would make fabric submission order,
	// and with it every downstream departure time, vary run to run.
	s.Flooded++
	for _, id := range s.ids {
		if id != in {
			s.relayTo(s.port[id].out, f)
		}
	}
}

// relayTo submits a frame to the fabric toward one output port.
func (s *Switch) relayTo(out *Port, f *Frame) {
	//rtlint:presized relay ring presized in NewSwitch and compacted by relayPop
	s.relay = append(s.relay, relayEntry{f: f, out: out})
	s.sim.After(s.cfg.RelayLatency, s.relayFn)
}

// relayPop completes the oldest fabric crossing: the frame joins its
// output queue (which drops it to the port's OnDiscard when full).
//
//rtlint:hotpath
func (s *Switch) relayPop() {
	e := s.relay[s.relayHead]
	s.relay[s.relayHead] = relayEntry{}
	s.relayHead++
	// Compact occasionally so memory does not grow with total throughput.
	if s.relayHead > 8 && s.relayHead*2 >= len(s.relay) {
		n := copy(s.relay, s.relay[s.relayHead:])
		s.relay = s.relay[:n]
		s.relayHead = 0
	}
	e.out.Send(e.f)
}

// PortIDs returns the attached port ids in ascending order.
func (s *Switch) PortIDs() []int {
	return append([]int(nil), s.ids...)
}

// OutputPort returns the egress Port of switch port id (for statistics and
// departure hooks).
func (s *Switch) OutputPort(id int) *Port {
	p, ok := s.port[id]
	if !ok {
		panic(fmt.Sprintf("ethernet: unknown switch port %d", id))
	}
	return p.out
}
