package ethernet

import (
	"testing"

	"repro/internal/des"
	"repro/internal/simtime"
)

func TestBERZeroLosesNothing(t *testing.T) {
	sim := des.New(1)
	got := 0
	p := NewPort("p", sim, NewFCFSQueue(0), rate10M, 0, func(*Frame) { got++ })
	p.SetBitErrorRate(0, nil)
	sim.At(0, func() {
		for i := 0; i < 100; i++ {
			p.Send(frameOfSize(100, 0))
		}
	})
	sim.Run()
	if got != 100 || p.Corrupted != 0 {
		t.Errorf("delivered %d, corrupted %d", got, p.Corrupted)
	}
}

func TestBERDropsFrames(t *testing.T) {
	sim := des.New(7)
	got := 0
	p := NewPort("p", sim, NewFCFSQueue(0), simtime.Gbps, 0, func(*Frame) { got++ })
	// A harsh medium: 1e-4 per bit over ~1 kB frames → most frames die.
	p.SetBitErrorRate(1e-4, sim.RNG())
	const n = 500
	sim.At(0, func() {
		for i := 0; i < n; i++ {
			p.Send(frameOfSize(1000, 0))
		}
	})
	sim.Run()
	if p.Corrupted == 0 {
		t.Fatal("no corruption at BER 1e-4")
	}
	if got+p.Corrupted != n {
		t.Errorf("delivered %d + corrupted %d != %d", got, p.Corrupted, n)
	}
	// ~8176 bits/frame → P(ok) = (1−1e-4)^8176 ≈ 0.44. Expect deliveries
	// in a generous band around that.
	if got < n/5 || got > 4*n/5 {
		t.Errorf("delivered %d of %d — loss rate implausible for BER 1e-4", got, n)
	}
}

func TestBERLossRateScalesWithFrameSize(t *testing.T) {
	run := func(payload int) int {
		sim := des.New(9)
		got := 0
		p := NewPort("p", sim, NewFCFSQueue(0), simtime.Gbps, 0, func(*Frame) { got++ })
		p.SetBitErrorRate(5e-5, sim.RNG())
		sim.At(0, func() {
			for i := 0; i < 400; i++ {
				p.Send(frameOfSize(payload, 0))
			}
		})
		sim.Run()
		return got
	}
	small, large := run(46), run(1500)
	if large >= small {
		t.Errorf("large frames survived (%d) at least as often as small (%d)", large, small)
	}
}

func TestBERDeterministic(t *testing.T) {
	run := func() int {
		sim := des.New(11)
		got := 0
		p := NewPort("p", sim, NewFCFSQueue(0), rate10M, 0, func(*Frame) { got++ })
		p.SetBitErrorRate(1e-5, sim.RNG())
		sim.At(0, func() {
			for i := 0; i < 200; i++ {
				p.Send(frameOfSize(500, 0))
			}
		})
		sim.Run()
		return got
	}
	if a, b := run(), run(); a != b {
		t.Errorf("BER model not deterministic: %d vs %d", a, b)
	}
}

func TestBERValidation(t *testing.T) {
	sim := des.New(1)
	p := NewPort("p", sim, NewFCFSQueue(0), rate10M, 0, func(*Frame) {})
	for name, fn := range map[string]func(){
		"negative": func() { p.SetBitErrorRate(-0.1, sim.RNG()) },
		"one":      func() { p.SetBitErrorRate(1, sim.RNG()) },
		"nil rng":  func() { p.SetBitErrorRate(0.5, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}
