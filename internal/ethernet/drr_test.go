package ethernet

import (
	"testing"

	"repro/internal/des"
	"repro/internal/simtime"
)

const drrQuantum = MaxFrameBytes + VLANTagBytes // 1522 B, the minimum legal

func equalQuanta() [NumClasses]int {
	return [NumClasses]int{drrQuantum, drrQuantum, drrQuantum, drrQuantum}
}

func TestDRRConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"small quantum": func() { NewDRRQueue([NumClasses]int{100, drrQuantum, drrQuantum, drrQuantum}, 0) },
		"neg capacity":  func() { NewDRRQueue(equalQuanta(), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDRRSingleClassIsFIFO(t *testing.T) {
	q := NewDRRQueue(equalQuanta(), 0)
	var in []*Frame
	for i := 0; i < 8; i++ {
		f := frameOfSize(100+i, PCPOfClass(1))
		in = append(in, f)
		q.Enqueue(f)
	}
	for i, want := range in {
		if got := q.Dequeue(); got != want {
			t.Fatalf("dequeue %d out of order", i)
		}
	}
	if q.Dequeue() != nil {
		t.Error("empty queue returned a frame")
	}
}

func TestDRREqualQuantaInterleaves(t *testing.T) {
	// Two persistently backlogged classes with equal quanta must be served
	// ~alternately (equal byte shares), not in strict class order.
	q := NewDRRQueue(equalQuanta(), 0)
	for i := 0; i < 20; i++ {
		q.Enqueue(frameOfSize(1000, PCPOfClass(0)))
		q.Enqueue(frameOfSize(1000, PCPOfClass(3)))
	}
	counts := map[int]int{}
	for i := 0; i < 10; i++ {
		f := q.Dequeue()
		counts[ClassOfPCP(f.Priority)]++
	}
	if counts[0] == 10 || counts[3] == 10 {
		t.Errorf("one class monopolized the first 10 slots: %v", counts)
	}
	if diff := counts[0] - counts[3]; diff < -2 || diff > 2 {
		t.Errorf("equal quanta gave unequal service: %v", counts)
	}
}

func TestDRRProportionalShares(t *testing.T) {
	// Class 0 with 3× the quantum of class 3 gets ~3× the bytes.
	quanta := equalQuanta()
	quanta[0] = 3 * drrQuantum
	q := NewDRRQueue(quanta, 0)
	for i := 0; i < 300; i++ {
		q.Enqueue(frameOfSize(1000, PCPOfClass(0)))
		q.Enqueue(frameOfSize(1000, PCPOfClass(3)))
	}
	bytes := map[int]int{}
	for i := 0; i < 200; i++ {
		f := q.Dequeue()
		bytes[ClassOfPCP(f.Priority)] += f.FrameBytes()
	}
	ratio := float64(bytes[0]) / float64(bytes[3])
	if ratio < 2.4 || ratio > 3.6 {
		t.Errorf("share ratio %.2f, want ≈3", ratio)
	}
}

func TestDRRNoStarvation(t *testing.T) {
	// The property strict priority lacks: a low class is served even while
	// the top class stays saturated.
	sim := des.New(1)
	var served []int
	p := NewPort("p", sim, NewDRRQueue(equalQuanta(), 0), rate10M, 0, func(f *Frame) {
		served = append(served, ClassOfPCP(f.Priority))
	})
	sim.At(0, func() {
		for i := 0; i < 50; i++ {
			p.Send(frameOfSize(1000, PCPOfClass(0)))
		}
		p.Send(frameOfSize(1000, PCPOfClass(3)))
	})
	sim.Run()
	pos := -1
	for i, c := range served {
		if c == 3 {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatal("low class starved")
	}
	if pos > 3 {
		t.Errorf("low-class frame served at position %d; DRR should interleave promptly", pos)
	}

	// Contrast: the same scenario under strict priority serves it dead last.
	sim2 := des.New(1)
	var served2 []int
	p2 := NewPort("p", sim2, NewPriorityQueue(0), rate10M, 0, func(f *Frame) {
		served2 = append(served2, ClassOfPCP(f.Priority))
	})
	sim2.At(0, func() {
		for i := 0; i < 50; i++ {
			p2.Send(frameOfSize(1000, PCPOfClass(0)))
		}
		p2.Send(frameOfSize(1000, PCPOfClass(3)))
	})
	sim2.Run()
	if served2[len(served2)-1] != 3 {
		t.Error("strict priority did not serve the low frame last")
	}
}

func TestDRRDeficitResetsOnIdle(t *testing.T) {
	q := NewDRRQueue(equalQuanta(), 0)
	// Serve a class to empty; its deficit must not carry to the next burst.
	q.Enqueue(frameOfSize(46, PCPOfClass(0)))
	q.Dequeue()
	if q.deficit[0] != 0 {
		t.Errorf("deficit %d after idle, want 0", q.deficit[0])
	}
}

func TestDRRCapacityAndStats(t *testing.T) {
	q := NewDRRQueue(equalQuanta(), simtime.Bytes(128))
	a, b, c := frameOfSize(8, 7), frameOfSize(8, 7), frameOfSize(8, 7)
	if !q.Enqueue(a) || !q.Enqueue(b) {
		t.Fatal("within capacity dropped")
	}
	if q.Enqueue(c) {
		t.Fatal("over capacity accepted")
	}
	if q.Drops().Frames != 1 {
		t.Errorf("drops = %+v", q.Drops())
	}
	if q.Len() != 2 || q.Backlog() != simtime.Bytes(128) {
		t.Errorf("Len/Backlog = %d/%v", q.Len(), q.Backlog())
	}
	if q.MaxBacklog() != simtime.Bytes(128) {
		t.Errorf("MaxBacklog = %v", q.MaxBacklog())
	}
	if q.ClassBacklog(0) != simtime.Bytes(128) {
		t.Errorf("ClassBacklog = %v", q.ClassBacklog(0))
	}
}

func TestDRRConservation(t *testing.T) {
	// Everything enqueued is eventually dequeued, regardless of mix.
	q := NewDRRQueue(equalQuanta(), 0)
	rng := des.NewRNG(3)
	n := 0
	for i := 0; i < 500; i++ {
		q.Enqueue(frameOfSize(rng.Intn(1400)+46, PCP(rng.Intn(8))))
		n++
		if rng.Intn(3) == 0 {
			if q.Dequeue() != nil {
				n--
			}
		}
	}
	for q.Dequeue() != nil {
		n--
	}
	if n != 0 {
		t.Errorf("conservation broken: %d frames unaccounted", n)
	}
}
