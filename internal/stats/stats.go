// Package stats provides the small online-statistics toolkit the
// simulators use to summarize observed latencies: exact min/max, Welford
// mean/variance, and a fixed-resolution histogram with quantile queries.
// Everything operates on simtime.Duration samples.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/simtime"
)

// Summary accumulates scalar statistics over duration samples using
// Welford's numerically stable online algorithm.
type Summary struct {
	n        int
	min, max simtime.Duration
	mean, m2 float64 // seconds
}

// Add records one sample.
//
//rtlint:hotpath
func (s *Summary) Add(d simtime.Duration) {
	v := d.Seconds()
	s.n++
	if s.n == 1 {
		s.min, s.max = d, d
	} else {
		if d < s.min {
			s.min = d
		}
		if d > s.max {
			s.max = d
		}
	}
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// N returns the sample count.
func (s *Summary) N() int { return s.n }

// Min returns the smallest sample (0 if empty).
func (s *Summary) Min() simtime.Duration {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample (0 if empty).
func (s *Summary) Max() simtime.Duration {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Mean returns the average sample.
func (s *Summary) Mean() simtime.Duration {
	return simtime.Duration(math.Round(s.mean * float64(simtime.Second)))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func (s *Summary) StdDev() simtime.Duration {
	if s.n < 2 {
		return 0
	}
	return simtime.Duration(math.Round(math.Sqrt(s.m2/float64(s.n-1)) * float64(simtime.Second)))
}

// Merge folds another summary into s (parallel collection).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	n1, n2 := float64(s.n), float64(o.n)
	delta := o.mean - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += o.m2 + delta*delta*n1*n2/total
	s.n += o.n
}

// String renders the summary compactly.
func (s *Summary) String() string {
	if s.n == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d min=%v mean=%v max=%v σ=%v", s.n, s.Min(), s.Mean(), s.Max(), s.StdDev())
}

// Histogram collects duration samples for exact quantile queries. Samples
// are kept (the experiment scales here are ≤ millions of frames), so
// quantiles are exact rather than approximate — determinism is worth more
// than memory in a reproduction artifact.
type Histogram struct {
	samples []simtime.Duration
	sorted  bool
}

// Add records one sample.
//
//rtlint:hotpath
func (h *Histogram) Add(d simtime.Duration) {
	//rtlint:presized simulators Reserve the expected delivery count up front; growth past it is amortized
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Reserve grows the sample buffer to hold at least n samples without
// further allocation — simulators that know their expected delivery count
// presize here so per-delivery Add stays allocation-free.
func (h *Histogram) Reserve(n int) {
	if n <= cap(h.samples) {
		return
	}
	grown := make([]simtime.Duration, len(h.samples), n)
	copy(grown, h.samples)
	h.samples = grown
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.samples) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using the nearest-rank
// method; q=1 is the maximum. It panics on an empty histogram or
// out-of-range q — quantiles of nothing are a caller bug.
func (h *Histogram) Quantile(q float64) simtime.Duration {
	if len(h.samples) == 0 {
		panic("stats: quantile of empty histogram")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g out of range", q))
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Merge folds another histogram into h (parallel or replicated
// collection). The other histogram is not modified.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	h.samples = append(h.samples, o.samples...)
	h.sorted = false
}

// Buckets partitions the samples into n equal-width bins between min and
// max, returning the bin edges and counts (for ASCII rendering). Like
// Quantile, it panics on an empty histogram or a non-positive bucket
// count — bucketing nothing is a caller bug.
func (h *Histogram) Buckets(n int) (edges []simtime.Duration, counts []int) {
	if n <= 0 {
		panic("stats: non-positive bucket count")
	}
	if len(h.samples) == 0 {
		panic("stats: buckets of empty histogram")
	}
	lo := h.Quantile(0)
	hi := h.Quantile(1)
	if hi == lo {
		return []simtime.Duration{lo, hi}, []int{len(h.samples)}
	}
	width := (hi - lo + simtime.Duration(n) - simtime.Nanosecond) / simtime.Duration(n)
	counts = make([]int, n)
	edges = make([]simtime.Duration, n+1)
	for i := range edges {
		edges[i] = lo + simtime.Duration(i)*width
	}
	for _, s := range h.samples {
		b := int((s - lo) / width)
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return edges, counts
}
