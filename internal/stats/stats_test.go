package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Error("empty summary not all-zero")
	}
	if s.String() != "no samples" {
		t.Errorf("String = %q", s.String())
	}
	for _, v := range []simtime.Duration{10, 20, 30} {
		s.Add(v * simtime.Millisecond)
	}
	if s.N() != 3 {
		t.Errorf("N = %d", s.N())
	}
	if s.Min() != 10*simtime.Millisecond || s.Max() != 30*simtime.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 20*simtime.Millisecond {
		t.Errorf("mean = %v", s.Mean())
	}
	// σ = 10ms for {10,20,30}.
	if got := s.StdDev(); got != 10*simtime.Millisecond {
		t.Errorf("stddev = %v", got)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestSummarySingleSample(t *testing.T) {
	var s Summary
	s.Add(simtime.Millisecond)
	if s.StdDev() != 0 {
		t.Error("stddev of one sample should be 0")
	}
	if s.Min() != s.Max() || s.Min() != simtime.Millisecond {
		t.Error("min/max of one sample")
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, all Summary
	data := []simtime.Duration{5, 1, 9, 2, 8, 3, 7, 4, 6, 10}
	for i, v := range data {
		d := v * simtime.Microsecond
		all.Add(d)
		if i%2 == 0 {
			a.Add(d)
		} else {
			b.Add(d)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Error("merged counts/extremes differ")
	}
	if a.Mean() != all.Mean() {
		t.Errorf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if d := a.StdDev() - all.StdDev(); d < -1 || d > 1 {
		t.Errorf("merged stddev %v vs %v", a.StdDev(), all.StdDev())
	}
	var empty Summary
	a.Merge(&empty) // no-op
	if a.N() != all.N() {
		t.Error("merging empty changed the summary")
	}
	var fresh Summary
	fresh.Merge(&a)
	if fresh.N() != a.N() || fresh.Mean() != a.Mean() {
		t.Error("merge into empty broken")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(simtime.Duration(i) * simtime.Microsecond)
	}
	tests := []struct {
		q    float64
		want simtime.Duration
	}{
		{0, simtime.Microsecond},
		{0.5, 50 * simtime.Microsecond},
		{0.99, 99 * simtime.Microsecond},
		{1, 100 * simtime.Microsecond},
	}
	for _, tc := range tests {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if h.N() != 100 {
		t.Errorf("N = %d", h.N())
	}
}

func TestHistogramQuantileAfterMoreAdds(t *testing.T) {
	var h Histogram
	h.Add(10)
	_ = h.Quantile(1)
	h.Add(5) // must re-sort
	if got := h.Quantile(0); got != 5 {
		t.Errorf("Quantile(0) = %v after late add", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	// Each subtest gets a fresh Histogram: map iteration order is random,
	// and a shared histogram would let "bad q" (which Adds a sample) run
	// before "empty quantile" and defeat its empty-state premise.
	for name, fn := range map[string]func(h *Histogram){
		"empty quantile": func(h *Histogram) { h.Quantile(0.5) },
		"empty buckets":  func(h *Histogram) { h.Buckets(5) },
		"bad q":          func(h *Histogram) { h.Add(1); h.Quantile(1.5) },
		"zero buckets":   func(h *Histogram) { h.Add(1); h.Buckets(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			var h Histogram
			fn(&h)
		}()
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	for i := 1; i <= 50; i++ {
		d := simtime.Duration(i) * simtime.Microsecond
		all.Add(d)
		if i%2 == 0 {
			a.Add(d)
		} else {
			b.Add(d)
		}
	}
	a.Quantile(0.5) // force a sort; Merge must invalidate it
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if got, want := a.Quantile(q), all.Quantile(q); got != want {
			t.Errorf("Quantile(%g) = %v after merge, want %v", q, got, want)
		}
	}
	if b.N() != 25 {
		t.Errorf("merge modified the source (N = %d)", b.N())
	}
	var empty Histogram
	a.Merge(&empty)
	a.Merge(nil)
	if a.N() != all.N() {
		t.Error("merging empty/nil changed the histogram")
	}
	var fresh Histogram
	fresh.Merge(&a)
	if fresh.N() != a.N() || fresh.Quantile(1) != a.Quantile(1) {
		t.Error("merge into empty broken")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(simtime.Duration(i))
	}
	edges, counts := h.Buckets(10)
	if len(edges) != 11 || len(counts) != 10 {
		t.Fatalf("edges/counts lengths %d/%d", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 100 {
		t.Errorf("bucket counts sum to %d", total)
	}
	var constant Histogram
	constant.Add(7)
	constant.Add(7)
	if _, c := constant.Buckets(4); len(c) != 1 || c[0] != 2 {
		t.Errorf("constant histogram buckets = %v", c)
	}
}

// Property: Summary mean/min/max agree with a brute-force computation.
func TestSummaryAgainstBruteForce(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		var sum float64
		min, max := simtime.Duration(math.MaxInt64), simtime.Duration(0)
		for _, r := range raw {
			d := simtime.Duration(r)
			s.Add(d)
			sum += d.Seconds()
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		wantMean := sum / float64(len(raw))
		gotMean := s.Mean().Seconds()
		return s.Min() == min && s.Max() == max &&
			math.Abs(gotMean-wantMean) < 1e-9+1e-9*math.Abs(wantMean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, q1Raw, q2Raw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, r := range raw {
			h.Add(simtime.Duration(r))
		}
		q1 := float64(q1Raw) / 255
		q2 := float64(q2Raw) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return h.Quantile(q1) <= h.Quantile(q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
