package scenariogen

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/netcalc"
	"repro/internal/selftest"
	"repro/internal/topology"
)

// Verdict is the soundness record of one checked scenario. Violations is
// the invariant ledger: an empty list means the scenario survived every
// oracle — canonical round-trip, latency bounds, backlog bounds, counter
// conservation, and (when requested and eligible) byte-identity with the
// reference simulator.
type Verdict struct {
	// Name and Hash identify the scenario (core.CanonicalConfigHash).
	Name string
	Hash string
	// Flows is the number of bound connections.
	Flows int
	// Unstable records that the analysis declined to bound the scenario
	// (ErrUnstable: over-subscribed fabric); the latency comparison is
	// then vacuous and skipped, the remaining invariants still run.
	Unstable bool
	// WorstFlow and WorstRatio locate the tightest latency margin:
	// max over flows of observed/bound (0 when unstable or nothing
	// delivered). A ratio above 1 is a soundness violation.
	WorstFlow  string
	WorstRatio float64
	// Backlog is the observed-versus-bound verdict over every queue.
	Backlog core.BacklogVerdict
	// Simulation counters, for corpus-interest triage.
	Delivered, Dropped, Corrupted, Redundant, Discarded int
	// Violations lists every broken invariant, deterministically ordered.
	Violations []string
}

// Sound reports whether every invariant held.
func (v *Verdict) Sound() bool { return len(v.Violations) == 0 }

func (v *Verdict) violate(format string, args ...any) {
	v.Violations = append(v.Violations, fmt.Sprintf(format, args...))
}

// Check drives one scenario through every pipeline and verdicts it:
// the config must round-trip byte-identically through its canonical
// form, the analysis must either bound it or flag it unstable, the
// simulation must run panic-free, every observed latency must respect
// its bound (the loss-aware bound on lossy redundant networks), every
// observed queue high-water mark must respect its backlog bound, and the
// redundancy counters must conserve copies. A returned error means the
// scenario could not be exercised at all (it does not bind); a Verdict
// with Violations means an invariant broke — the fuzzer's actual prey.
func Check(cfg *topology.Config) (*Verdict, error) { return check(cfg, false) }

// CheckStrict is Check plus the reference-simulator cross-check: on
// scenarios the oracle models (clean medium), the production simulator's
// result must match the naive string-keyed oracle byte for byte. The
// oracle is orders of magnitude slower, so callers sample which
// scenarios to hold to it.
func CheckStrict(cfg *topology.Config) (*Verdict, error) { return check(cfg, true) }

func check(cfg *topology.Config, oracle bool) (*Verdict, error) {
	v := &Verdict{Name: cfg.Name}

	// Canonical identity: the config must survive Save → Load → Save
	// byte-identically, and hash stably.
	var first bytes.Buffer
	if err := cfg.Save(&first); err != nil {
		return nil, fmt.Errorf("scenariogen: save: %w", err)
	}
	reloaded, err := topology.Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("scenariogen: canonical form rejected: %w", err)
	}
	var second bytes.Buffer
	if err := reloaded.Save(&second); err != nil {
		return nil, fmt.Errorf("scenariogen: re-save: %w", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		v.violate("canonical round-trip not byte-identical")
	}
	if v.Hash, err = core.CanonicalConfigHash(cfg); err != nil {
		return nil, fmt.Errorf("scenariogen: hash: %w", err)
	}
	if h2, err := core.CanonicalConfigHash(reloaded); err != nil || h2 != v.Hash {
		v.violate("canonical hash not stable under reload: %s != %s", v.Hash, h2)
	}

	s, err := core.NewScenario(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenariogen: bind: %w", err)
	}

	bounds, err := s.Analyze(s.Sim.Approach)
	switch {
	case errors.Is(err, analysis.ErrUnstable):
		v.Unstable = true
	case err != nil:
		return nil, fmt.Errorf("scenariogen: analyze: %w", err)
	default:
		v.Flows = len(bounds.Flows)
	}

	backs, err := s.Backlogs()
	if err != nil {
		return nil, fmt.Errorf("scenariogen: backlogs: %w", err)
	}

	verifyCacheEquivalence(v, s, bounds, backs)

	sim, err := s.Simulate()
	if err != nil {
		return nil, fmt.Errorf("scenariogen: simulate: %w", err)
	}

	// Latency soundness: every delivered instance at or under its bound.
	if !v.Unstable {
		for _, pb := range bounds.Flows {
			fs := sim.Flows[pb.Spec.Msg.Name]
			observed := fs.Latency.Max()
			if observed > pb.EndToEnd {
				v.violate("flow %s: observed %v exceeds bound %v",
					pb.Spec.Msg.Name, observed, pb.EndToEnd)
			}
			if pb.EndToEnd > 0 && observed > 0 {
				if r := float64(observed) / float64(pb.EndToEnd); r > v.WorstRatio {
					v.WorstRatio, v.WorstFlow = r, pb.Spec.Msg.Name
				}
			}
		}
	}

	// Backlog soundness: every queue's high-water mark under its bound.
	v.Backlog = backs.Check([]*core.SimResult{sim})
	if !v.Backlog.Sound() {
		v.violate("backlog: %d of %d queues exceeded their bound (worst %s: %v > %v)",
			v.Backlog.Unsound, v.Backlog.Ports, v.Backlog.WorstKey, v.Backlog.WorstObserved, v.Backlog.WorstBound)
	}

	// Counter conservation on redundant networks: every copy that reached
	// a receiver is a unique delivery, a healthy redundant duplicate, or
	// an integrity discard — loss and drops remove copies before arrival,
	// never after.
	v.Delivered, v.Dropped, v.Corrupted = sim.TotalDelivered(), sim.Dropped, sim.Corrupted
	v.Redundant, v.Discarded = sim.Redundant, sim.Discarded
	if len(sim.PlaneDelivered) > 0 {
		arrived := 0
		for _, n := range sim.PlaneDelivered {
			arrived += n
		}
		if want := v.Delivered + v.Redundant + v.Discarded; arrived != want {
			v.violate("copy conservation broken: %d arrived, %d accounted", arrived, want)
		}
	}

	// Reference-simulator cross-check, where the oracle's model applies.
	if oracle && s.Sim.BER == 0 {
		ref, err := selftest.Oracle(s.Set, s.Sim, s.Net)
		if err != nil {
			return nil, fmt.Errorf("scenariogen: oracle: %w", err)
		}
		if got, want := selftest.Render(sim), selftest.Render(ref); got != want {
			v.violate("production simulator diverged from the reference oracle")
		}
	}
	return v, nil
}

// equivMu serializes the global memo toggles: concurrent equivalence
// checks flipping them independently could restore a stale setting.
var equivMu sync.Mutex

// verifyCacheEquivalence recomputes the scenario's bounds and backlogs
// with the netcalc curve memo and the analysis cache disabled, and
// verdicts any divergence from the memoized results computed by check —
// the byte-identity contract of both memoization layers, exercised on
// every scenario of the 1000-seed sweep. bounds is nil when the memoized
// analysis flagged the scenario unstable (v.Unstable); the uncached
// analysis must then agree on instability.
func verifyCacheEquivalence(v *Verdict, s *core.Scenario, bounds *analysis.Result, backs *core.NetworkBacklogs) {
	equivMu.Lock()
	defer equivMu.Unlock()
	prevMemo := netcalc.SetMemoEnabled(false)
	prevCache := analysis.SetCacheEnabled(false)
	defer func() {
		netcalc.SetMemoEnabled(prevMemo)
		analysis.SetCacheEnabled(prevCache)
	}()

	rawBounds, err := s.Analyze(s.Sim.Approach)
	switch {
	case errors.Is(err, analysis.ErrUnstable):
		if !v.Unstable {
			v.violate("memo equivalence: uncached analysis unstable, memoized analysis was not")
		}
	case err != nil:
		v.violate("memo equivalence: uncached analysis failed: %v", err)
	default:
		switch {
		case v.Unstable:
			v.violate("memo equivalence: memoized analysis unstable, uncached analysis was not")
		case !reflect.DeepEqual(bounds, rawBounds):
			v.violate("memo equivalence: bounds diverge between memoized and uncached analysis")
		}
	}

	rawBacks, err := s.Backlogs()
	if err != nil {
		v.violate("memo equivalence: uncached backlogs failed: %v", err)
		return
	}
	if len(rawBacks.Planes) != len(backs.Planes) {
		v.violate("memo equivalence: backlog plane counts diverge: %d != %d", len(backs.Planes), len(rawBacks.Planes))
		return
	}
	for p, plane := range backs.Planes {
		raw := rawBacks.Planes[p]
		// Compare Cfg and Edges, not the whole struct: EdgeBacklogResult
		// carries a lazily built lookup index that depends on ByKey call
		// history, not on the bounds.
		if plane.Cfg != raw.Cfg || !reflect.DeepEqual(plane.Edges, raw.Edges) {
			v.violate("memo equivalence: plane %d backlog bounds diverge between memoized and uncached analysis", p)
		}
	}
}
