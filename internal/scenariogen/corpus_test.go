package scenariogen

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// corpusDir is the committed survivor corpus, replayed by
// `rtether corpus` and CI. Paths are relative to this package.
const corpusDir = "../../testdata/corpus"

// corpusSurvivors sweeps the pinned seed range and selects the most
// interesting sound scenarios: the tightest latency margins, integrity
// discards, lossy redundant networks, and queue-overflow drops.
func corpusSurvivors(t *testing.T) []*Verdict {
	t.Helper()
	seeds := make([]uint64, 1000)
	for i := range seeds {
		seeds[i] = des.SplitSeed(rootSeed, uint64(i))
	}
	all, err := sweep.Run(seeds, 0, func(seed uint64) (*Verdict, error) {
		return Check(Generate(seed, Params{}))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range all {
		if !v.Sound() {
			t.Fatalf("%s is not sound — fix the violation before committing a corpus: %v", v.Name, v.Violations)
		}
	}

	pick := map[string]*Verdict{}
	take := func(n int, candidates []*Verdict) {
		for _, v := range candidates {
			if n == 0 {
				return
			}
			if _, ok := pick[v.Name]; !ok {
				pick[v.Name] = v
				n--
			}
		}
	}
	byRatio := append([]*Verdict(nil), all...)
	sort.SliceStable(byRatio, func(i, j int) bool { return byRatio[i].WorstRatio > byRatio[j].WorstRatio })
	take(4, byRatio)
	var discards, lossy, drops []*Verdict
	for _, v := range all {
		cfg := genOf(v.Name)
		if v.Discarded > 0 {
			discards = append(discards, v)
		}
		if cfg.Network != nil && cfg.Network.Redundant() && cfg.Sim != nil && cfg.Sim.BER > 0 {
			lossy = append(lossy, v)
		}
		if v.Dropped > 0 {
			drops = append(drops, v)
		}
	}
	take(3, discards)
	take(3, lossy)
	take(2, drops)

	out := make([]*Verdict, 0, len(pick))
	//rtlint:sorted-after the slice is sorted by name immediately below
	for _, v := range pick {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// genOf re-derives the scenario behind a verdict from its gen-<seed> name.
func genOf(name string) *topology.Config {
	seed, err := strconv.ParseUint(strings.TrimPrefix(name, "gen-"), 16, 64)
	if err != nil {
		panic("corpus verdict with a non-generated name: " + name)
	}
	return Generate(seed, Params{})
}

// TestWriteCorpus regenerates the committed corpus from the pinned seed
// sweep. Gated behind REGEN_CORPUS so a routine test run never rewrites
// committed files:
//
//	REGEN_CORPUS=1 go test ./internal/scenariogen -run TestWriteCorpus
func TestWriteCorpus(t *testing.T) {
	if os.Getenv("REGEN_CORPUS") == "" {
		t.Skip("set REGEN_CORPUS=1 to rewrite the committed corpus")
	}
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	old, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range old {
		if err := os.Remove(f); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range corpusSurvivors(t) {
		path := filepath.Join(corpusDir, v.Name+".json")
		if err := os.WriteFile(path, []byte(Dump(genOf(v.Name))), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (worst %.3f, discarded %d, dropped %d)", path, v.WorstRatio, v.Discarded, v.Dropped)
	}
}

// TestCorpusReplay is the committed corpus's guardian: every file loads,
// is byte-identical to its canonical form (so the commit IS the replayed
// scenario), and still survives every soundness invariant — including
// the reference-oracle cross-check where the oracle's model applies.
func TestCorpusReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no committed corpus in %s (run REGEN_CORPUS=1 go test -run TestWriteCorpus)", corpusDir)
	}
	sort.Strings(files)
	type replay struct {
		file string
		v    *Verdict
	}
	results, err := sweep.Run(files, 0, func(path string) (replay, error) {
		raw, err := os.ReadFile(path)
		if err != nil {
			return replay{}, err
		}
		cfg, err := topology.Load(bytes.NewReader(raw))
		if err != nil {
			return replay{}, err
		}
		if Dump(cfg) != string(raw) {
			return replay{file: path, v: &Verdict{Violations: []string{"committed file is not canonical"}}}, nil
		}
		v, err := CheckStrict(cfg)
		if err != nil {
			return replay{}, err
		}
		return replay{file: path, v: v}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.v.Sound() {
			t.Errorf("%s: %s", r.file, strings.Join(r.v.Violations, "; "))
		}
	}
}
