package scenariogen

import (
	"bytes"

	"repro/internal/topology"
)

// Dump renders a scenario as the canonical JSON the CLI replays — the
// exact bytes to paste into `rtether validate -config -`.
func Dump(cfg *topology.Config) string {
	var buf bytes.Buffer
	if err := cfg.Save(&buf); err != nil {
		return "<unserializable scenario: " + err.Error() + ">"
	}
	return buf.String()
}

// cloneConfig deep-copies a scenario through its canonical JSON form (the
// only clone that provably preserves load-validity).
func cloneConfig(c *topology.Config) (*topology.Config, error) {
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		return nil, err
	}
	return topology.Load(bytes.NewReader(buf.Bytes()))
}

// Shrink minimizes a failing scenario: it greedily applies
// simplifications — dropping message chunks ddmin-style, erasing the
// workload section, collapsing the network to the default star, stripping
// plane specs and per-link overrides, zeroing sim knobs and per-message
// overrides — keeping each candidate only if it still load-validates AND
// still fails (per the caller's predicate, typically "Check reports a
// violation"). The result is the small reproducing JSON a human can read,
// replayable with `rtether validate -config -`. failing(cfg) must be true
// on entry; Shrink never returns a passing scenario.
func Shrink(cfg *topology.Config, failing func(*topology.Config) bool) *topology.Config {
	cur, err := cloneConfig(cfg)
	if err != nil {
		return cfg // not serializable: nothing to minimize
	}
	// try keeps the candidate when it is valid and still failing.
	try := func(mutate func(*topology.Config)) bool {
		cand, err := cloneConfig(cur)
		if err != nil {
			return false
		}
		mutate(cand)
		reloaded, err := cloneConfig(cand) // re-validate the mutated form
		if err != nil {
			return false
		}
		if !failing(reloaded) {
			return false
		}
		cur = reloaded
		return true
	}

	for pass := 0; pass < 6; pass++ {
		changed := false

		// Drop message chunks, halving granularity down to single
		// messages (delta debugging's reduction schedule).
		for size := len(cur.Messages) / 2; size >= 1; size /= 2 {
			for lo := 0; lo+size <= len(cur.Messages); {
				hi := lo + size
				if try(func(c *topology.Config) {
					c.Messages = append(c.Messages[:lo:lo], c.Messages[hi:]...)
				}) {
					changed = true // same lo now names the next chunk
				} else {
					lo += size
				}
			}
		}

		// Whole-section erasures, most powerful first.
		for _, mutate := range []func(*topology.Config){
			func(c *topology.Config) { c.Workload = nil },
			func(c *topology.Config) { c.Network = nil },
			func(c *topology.Config) { c.Sim = nil },
		} {
			if try(mutate) {
				changed = true
			}
		}

		// Network simplifications.
		if cur.Network != nil {
			for _, mutate := range []func(*topology.Config){
				func(c *topology.Config) { c.Network.Planes = 0; c.Network.PlaneSpecs = nil },
				func(c *topology.Config) { c.Network.PlaneSpecs = nil },
				func(c *topology.Config) { c.Network.TrunkRates = nil; c.Network.TrunkProps = nil },
				func(c *topology.Config) { c.Network.StationRates = nil; c.Network.StationProps = nil },
			} {
				if try(mutate) {
					changed = true
				}
			}
		}

		// Sim-section simplifications, one knob at a time.
		if cur.Sim != nil {
			for _, mutate := range []func(*topology.Config){
				func(c *topology.Config) { c.Sim.BER = 0 },
				func(c *topology.Config) { c.Sim.SkewMaxUs = 0 },
				func(c *topology.Config) { c.Sim.QueueCapacityBytes = 0; c.Sim.QueueCapacitiesBytes = nil },
				func(c *topology.Config) { c.Sim.Mode = ""; c.Sim.MeanSlackUs = 0 },
				func(c *topology.Config) { c.Sim.AlignPhases = nil },
				func(c *topology.Config) { c.Sim.Approach = "" },
				func(c *topology.Config) { c.Sim.Babbler = ""; c.Sim.BabbleFactor = 0 },
				func(c *topology.Config) { c.Sim.BypassShapers = false },
				func(c *topology.Config) { c.Sim.HorizonUs /= 2 },
			} {
				if try(mutate) {
					changed = true
				}
			}
		}

		// Per-message override erasures.
		for i := range cur.Messages {
			i := i
			if cur.Messages[i].Priority != nil {
				if try(func(c *topology.Config) { c.Messages[i].Priority = nil }) {
					changed = true
				}
			}
			if cur.Messages[i].SkewMaxUs != 0 {
				if try(func(c *topology.Config) { c.Messages[i].SkewMaxUs = 0 }) {
					changed = true
				}
			}
		}

		if !changed {
			break
		}
	}
	return cur
}
