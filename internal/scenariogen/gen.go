// Package scenariogen is the generative scenario fuzzer: a seeded
// generator of random valid scenario files (topology.Config) spanning
// random architectures × redundant-plane specs × workloads × acceptance
// windows × loss rates, a soundness checker that drives every generated
// scenario through the analysis and simulation pipelines with the
// backlog/latency bounds and the internal/selftest oracle as invariants,
// and a shrinker that minimizes failing scenarios to a small reproducing
// JSON.
//
// The package turns "the bounds hold on the fixtures we thought of" into
// "the bounds hold on thousands of scenarios nobody thought of": the
// seeded fuzz harness (TestFuzzSoundness) sweeps a seed range on every
// test run, and the most interesting survivors live on as the committed
// corpus under testdata/corpus, replayed by `rtether corpus` and CI.
package scenariogen

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Params bounds the generator's search space. The zero value selects the
// defaults below; the knobs exist so targeted searches (only duals, only
// lossy media) can narrow the space without a second generator.
type Params struct {
	// MaxStations caps the number of generated stations (min 3; default 6).
	MaxStations int
	// MaxMessages caps the number of explicit connections (default 12).
	MaxMessages int
	// MaxHorizonMs caps the simulated horizon in milliseconds (default 80).
	MaxHorizonMs int
}

func (p Params) withDefaults() Params {
	if p.MaxStations < 3 {
		p.MaxStations = 6
	}
	if p.MaxMessages < 1 {
		p.MaxMessages = 12
	}
	if p.MaxHorizonMs < 10 {
		p.MaxHorizonMs = 80
	}
	return p
}

// harmonic 1553-envelope periods, in microseconds.
var genPeriodsUs = []int64{20_000, 40_000, 80_000, 160_000}

// Generate derives one random, valid scenario from the seed — a pure
// function of (seed, p), so a failing seed IS the reproduction recipe.
// The scenario always loads (Check round-trips it to prove so): every
// station is placed, plane specs are µs-grained, and the workload
// validates. Diversity axes: station count, connection mix (kinds,
// periods, payloads, deadlines, priority and per-VL skew_max overrides),
// workload scaling (extra RTs, stamped templates), architecture (every
// built-in family plus random trees with per-link overrides), redundant
// planes with skew/rate-scale/failure specs, multiplexing discipline,
// release mode, acceptance windows, queue capacities and loss rates.
func Generate(seed uint64, p Params) *topology.Config {
	p = p.withDefaults()
	//rtlint:rng-ok the seed is this generator's explicit contract; the fuzz harness derives it from des.SplitSeed
	rng := des.NewRNG(seed)

	cfg := &topology.Config{
		Name:        fmt.Sprintf("gen-%016x", seed),
		LinkRateBps: int64(10 * simtime.Mbps),
		TTechnoUs:   int64(rng.Intn(3)) * 70, // 0, 70 or 140 µs
	}
	if rng.Intn(4) == 0 {
		cfg.LinkRateBps = int64(100 * simtime.Mbps)
	}

	// Stations and explicit connections.
	stations := 3 + rng.Intn(p.MaxStations-2)
	st := func(i int) string { return fmt.Sprintf("st%d", i) }
	messages := 4 + rng.Intn(p.MaxMessages-3)
	for i := 0; i < messages; i++ {
		src := rng.Intn(stations)
		// Star bias toward station 0 so a bottleneck multiplexer exists.
		dst := 0
		if src == 0 || rng.Intn(3) == 0 {
			for dst = rng.Intn(stations); dst == src; dst = rng.Intn(stations) {
			}
		}
		mc := topology.MessageConfig{
			Name:         fmt.Sprintf("%s/m%02d", st(src), i),
			Source:       st(src),
			Dest:         st(dst),
			Kind:         "periodic",
			PeriodUs:     genPeriodsUs[rng.Intn(len(genPeriodsUs))],
			PayloadBytes: 8 + 4*rng.Intn(31), // 8–128 B, word-aligned
		}
		mc.DeadlineUs = mc.PeriodUs
		if rng.Intn(5) < 2 { // ~40 % sporadic
			mc.Kind = "sporadic"
			switch rng.Intn(3) {
			case 0:
				mc.DeadlineUs = 3_000 // urgent class
			case 1:
				mc.DeadlineUs = mc.PeriodUs
			default:
				mc.DeadlineUs = 4 * mc.PeriodUs
			}
		}
		if rng.Intn(10) == 0 {
			pr := rng.Intn(4)
			mc.Priority = &pr
		}
		if rng.Intn(5) == 0 {
			mc.SkewMaxUs = int64(50 + 50*rng.Intn(10)) // 50–500 µs per-VL window
		}
		cfg.Messages = append(cfg.Messages, mc)
	}

	// Workload scaling section (~1/3 of scenarios).
	if rng.Intn(3) == 0 {
		w := &topology.WorkloadJSON{
			ExtraRTs: rng.Intn(5),
			Target:   st(rng.Intn(stations)),
		}
		if rng.Intn(2) == 0 {
			w.Templates = []topology.TemplateConfig{{
				MessageConfig: topology.MessageConfig{
					Name:         "tpl{i}/load",
					Source:       "tpl{i}",
					Dest:         w.Target,
					Kind:         "periodic",
					PeriodUs:     genPeriodsUs[rng.Intn(len(genPeriodsUs))],
					PayloadBytes: 16 + 8*rng.Intn(8),
					DeadlineUs:   160_000,
				},
				Count: 2 + rng.Intn(3),
			}}
		}
		cfg.Workload = w
	}

	genNetwork(rng, cfg, stations, st)
	genSim(rng, cfg)
	return cfg
}

// genNetwork attaches the architecture: absent (the paper's star), one of
// the built-in families, or a random switch tree with per-link overrides
// and random redundant-plane specs. Families and random trees are built
// over the explicit stations only when a workload section exists — the
// generated stations then exercise BuildNetwork's home-switch placement —
// and over the full expanded station list otherwise.
func genNetwork(rng *des.RNG, cfg *topology.Config, stations int, st func(int) string) {
	if rng.Intn(5) == 0 {
		return // no network section: the default star
	}
	placed := make([]string, stations)
	for i := range placed {
		placed[i] = st(i)
	}
	if cfg.Workload == nil || rng.Intn(2) == 0 {
		// Place every station the expanded workload will use.
		set, err := cfg.ToSet()
		if err == nil {
			placed = set.Stations()
		}
	}

	var net *topology.Network
	if fams := topology.Families(); rng.Intn(2) == 0 {
		net = fams[rng.Intn(len(fams))].Build(placed)
	} else {
		// Random switch tree: switch i > 0 hangs off a random earlier one.
		sw := 1 + rng.Intn(4)
		net = &topology.Network{
			Name:          fmt.Sprintf("rand%d", sw),
			Switches:      sw,
			StationSwitch: map[string]int{},
		}
		for i := 1; i < sw; i++ {
			net.Links = append(net.Links, [2]int{rng.Intn(i), i})
		}
		for _, s := range placed {
			net.StationSwitch[s] = rng.Intn(sw)
		}
		if rng.Intn(2) == 0 { // redundant planes
			net.Planes = 2 + rng.Intn(2)
		}
		// Per-link overrides: a slower or faster trunk, longer cables.
		if len(net.Links) > 0 && rng.Intn(3) == 0 {
			net.TrunkRates = make([]simtime.Rate, len(net.Links))
			net.TrunkRates[rng.Intn(len(net.Links))] = simtime.Rate(cfg.LinkRateBps) * simtime.Rate(1+rng.Intn(4)) / 2
		}
		if rng.Intn(4) == 0 {
			net.StationProps = map[string]simtime.Duration{
				placed[rng.Intn(len(placed))]: simtime.Duration(1+rng.Intn(3)) * simtime.Microsecond,
			}
		}
	}
	if net.Redundant() && rng.Intn(2) == 0 {
		specs := make([]topology.PlaneSpec, net.PlaneCount())
		for p := 1; p < len(specs); p++ { // plane 0 stays nominal
			specs[p] = topology.PlaneSpec{
				PhaseSkew: simtime.Duration(rng.Intn(7)) * 50 * simtime.Microsecond,
				PropSkew:  simtime.Duration(rng.Intn(4)) * simtime.Microsecond,
			}
			if rng.Intn(4) == 0 {
				specs[p].RateScale = 0.5 + 0.25*float64(rng.Intn(3))
			}
			if rng.Intn(8) == 0 {
				specs[p].Fail = true // plane 0 always survives
			}
		}
		net.PlaneSpecs = specs
	}
	cfg.Network = net
	if cfg.Workload != nil {
		cfg.Workload.Switch = rng.Intn(net.Switches)
	}
}

// genSim attaches the sim section: discipline, horizon, seed, release
// mode, acceptance window, loss rate and queue capacities.
func genSim(rng *des.RNG, cfg *topology.Config) {
	p := Params{}.withDefaults()
	seed := rng.Uint64()
	sim := &topology.SimJSON{
		HorizonUs: int64(20+rng.Intn(p.MaxHorizonMs-19)) * 1000,
		Seed:      &seed,
	}
	if rng.Intn(2) == 0 {
		sim.Approach = "fcfs"
	}
	if rng.Intn(3) == 0 {
		sim.Mode = "random-gaps"
		if rng.Intn(2) == 0 {
			sim.MeanSlackUs = int64(1+rng.Intn(20)) * 500
		}
	}
	if rng.Intn(4) == 0 {
		f := false
		sim.AlignPhases = &f
	}
	if cfg.Network != nil && cfg.Network.Redundant() && rng.Intn(2) == 0 {
		sim.SkewMaxUs = int64(50 + 50*rng.Intn(20)) // 50 µs – 1 ms window
	}
	if rng.Intn(4) == 0 {
		// Residual loss: the axis the loss-aware redundant bound prices.
		sim.BER = []float64{1e-5, 5e-5, 1e-4, 1e-3}[rng.Intn(4)]
	}
	if rng.Intn(6) == 0 {
		sim.QueueCapacityBytes = 2_000 + 1_000*rng.Intn(8)
	}
	cfg.Sim = sim
}
