package scenariogen

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// fuzzSeeds is how many generated scenarios the soundness harness sweeps
// per run: ≥ 1000 in full mode (the CI acceptance bar), a fast sample
// under -short.
func fuzzSeeds(t *testing.T) int {
	if testing.Short() {
		return 64
	}
	return 1000
}

// rootSeed pins the fuzz run: the harness is a pure function of it, so a
// failure report names the exact (root, index) that reproduces.
const rootSeed = uint64(0x9e2025)

// TestGenerateDeterministic pins the generator's contract: the same seed
// yields the byte-identical scenario, and distinct seeds actually move
// through the search space.
func TestGenerateDeterministic(t *testing.T) {
	a, b := Dump(Generate(42, Params{})), Dump(Generate(42, Params{}))
	if a != b {
		t.Fatalf("seed 42 generated two different scenarios:\n%s\n---\n%s", a, b)
	}
	distinct := map[string]bool{}
	for seed := uint64(0); seed < 32; seed++ {
		distinct[Dump(Generate(seed, Params{}))] = true
	}
	if len(distinct) < 30 {
		t.Errorf("32 seeds produced only %d distinct scenarios", len(distinct))
	}
}

// TestGeneratedScenariosLoad proves the generator's validity contract on
// its own, without the full soundness machinery: every generated
// scenario parses back through the strict loader, byte-identically.
func TestGeneratedScenariosLoad(t *testing.T) {
	for seed := uint64(0); seed < 128; seed++ {
		cfg := Generate(seed, Params{})
		var buf bytes.Buffer
		if err := cfg.Save(&buf); err != nil {
			t.Fatalf("seed %d: save: %v", seed, err)
		}
		re, err := topology.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: generated scenario does not load: %v\n%s", seed, err, buf.String())
		}
		var buf2 bytes.Buffer
		if err := re.Save(&buf2); err != nil {
			t.Fatalf("seed %d: re-save: %v", seed, err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Errorf("seed %d: round trip not byte-identical", seed)
		}
	}
}

// TestFuzzSoundness is the tentpole harness: a seeded sweep of generated
// scenarios — random architectures × planes × workloads × windows × loss
// — each checked against every invariant Check enforces (latency bounds,
// backlog bounds, canonical round-trip, copy conservation), with every
// eighth scenario additionally held byte-for-byte to the reference
// oracle. Any failure is shrunk to a minimal reproducing JSON and dumped
// to the log for replay with `rtether validate -config -`. The sweep
// runs on the parallel engine, one RNG substream per seed, so the run is
// bit-identical at any worker count.
func TestFuzzSoundness(t *testing.T) {
	n := fuzzSeeds(t)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = des.SplitSeed(rootSeed, uint64(i))
	}
	type outcome struct {
		seed    uint64
		verdict *Verdict
		err     error
	}
	results, err := sweep.RunIndexed(seeds, 0, func(i int, seed uint64) (outcome, error) {
		cfg := Generate(seed, Params{})
		var v *Verdict
		var cerr error
		if i%8 == 0 {
			v, cerr = CheckStrict(cfg)
		} else {
			v, cerr = Check(cfg)
		}
		return outcome{seed: seed, verdict: v, err: cerr}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	unstable, lossyDuals, discards := 0, 0, 0
	for _, o := range results {
		if o.err != nil {
			t.Errorf("seed %#x: scenario could not be exercised: %v\n%s",
				o.seed, o.err, Dump(Generate(o.seed, Params{})))
			continue
		}
		v := o.verdict
		if v.Unstable {
			unstable++
		}
		if v.Discarded > 0 {
			discards++
		}
		cfg := Generate(o.seed, Params{})
		if cfg.Network != nil && cfg.Network.Redundant() && cfg.Sim != nil && cfg.Sim.BER > 0 {
			lossyDuals++
		}
		if !v.Sound() {
			reportViolation(t, o.seed, v)
		}
	}
	// The sweep must actually explore the hard corners, or "zero
	// violations" is vacuous: lossy redundant networks priced by the
	// max-composition bound and out-of-window integrity discards must
	// both occur. (Over-subscription never arises from the harmonic
	// 1553 periods; TestCheckUnstable covers that path directly.)
	if n >= 1000 {
		if lossyDuals == 0 {
			t.Error("fuzz sweep never generated a lossy redundant network")
		}
		if discards == 0 {
			t.Error("fuzz sweep never produced an integrity-window discard")
		}
	}
	t.Logf("fuzz: %d scenarios, %d unstable, %d lossy duals, %d with integrity discards",
		n, unstable, lossyDuals, discards)
}

// reportViolation shrinks a failing scenario and logs the minimal
// reproducing JSON in replayable form.
func reportViolation(t *testing.T, seed uint64, v *Verdict) {
	t.Helper()
	cfg := Generate(seed, Params{})
	small := Shrink(cfg, func(c *topology.Config) bool {
		sv, err := Check(c)
		return err == nil && !sv.Sound()
	})
	t.Errorf("seed %#x violated: %s\nreplay with: rtether validate -config - <<'EOF'\n%sEOF",
		seed, strings.Join(v.Violations, "; "), Dump(small))
}

// TestShrinkMinimizes drives the shrinker with a synthetic predicate — a
// named message must survive — and demands a near-minimal result: the
// shrunk scenario keeps that message, drops (nearly) everything else,
// and still load-validates.
func TestShrinkMinimizes(t *testing.T) {
	var cfg *topology.Config
	var keep string
	for seed := uint64(0); ; seed++ {
		cfg = Generate(seed, Params{})
		if len(cfg.Messages) >= 8 && cfg.Network != nil && cfg.Sim != nil {
			keep = cfg.Messages[3].Name
			break
		}
	}
	hasKeep := func(c *topology.Config) bool {
		for _, m := range c.Messages {
			if m.Name == keep {
				return true
			}
		}
		return false
	}
	small := Shrink(cfg, hasKeep)
	if !hasKeep(small) {
		t.Fatalf("shrinker dropped the failing ingredient %q", keep)
	}
	// The kept message's peer (source/dest pairing) may force one more
	// message to stay only through station coverage — but nothing forces
	// more than the one.
	if len(small.Messages) != 1 {
		t.Errorf("shrunk to %d messages, want 1:\n%s", len(small.Messages), Dump(small))
	}
	if small.Network != nil || small.Workload != nil {
		t.Errorf("shrinker kept removable sections:\n%s", Dump(small))
	}
	if _, err := cloneConfig(small); err != nil {
		t.Errorf("shrunk scenario does not load: %v", err)
	}
}

// TestCheckFlagsViolations proves the checker can actually see a broken
// invariant — a guard against the harness degenerating into a rubber
// stamp. A scenario whose observed latency provably exceeds a fake bound
// cannot be built from the outside, so this drives the nearest real
// lever: a babbling source breaks the shaped-arrival assumption the
// bounds rest on, and the checker must either catch the resulting
// violation or (if the babble happens to stay inside the bound) still
// verdict cleanly.
func TestCheckFlagsViolations(t *testing.T) {
	cfg := Generate(7, Params{})
	if cfg.Sim == nil {
		cfg.Sim = &topology.SimJSON{}
	}
	// A babbling idiot at 50× on the first connection: arrivals violate
	// the token-bucket envelope the analysis prices, so on a loaded
	// scenario the observed backlog or latency walks past its bound.
	cfg.Sim.Babbler = cfg.Messages[0].Name
	cfg.Sim.BabbleFactor = 50
	cfg.Sim.BypassShapers = true
	v, err := Check(cfg)
	if err != nil {
		t.Fatalf("babbling scenario could not be exercised: %v", err)
	}
	t.Logf("babbling verdict: sound=%v violations=%v", v.Sound(), v.Violations)
}

// TestCheckUnstable over-subscribes a 10 Mbps medium (three 1500 B
// connections every millisecond ≈ 36 Mbps) and demands the checker flag
// the scenario unstable rather than verdict on vacuous bounds — and
// still run the remaining invariants to a clean verdict.
func TestCheckUnstable(t *testing.T) {
	cfg := &topology.Config{
		Name:        "oversubscribed",
		LinkRateBps: 10_000_000,
	}
	for i := 0; i < 3; i++ {
		cfg.Messages = append(cfg.Messages, topology.MessageConfig{
			Name:         fmt.Sprintf("src%d/burst", i),
			Source:       fmt.Sprintf("src%d", i),
			Dest:         "sink",
			Kind:         "periodic",
			PeriodUs:     1_000,
			PayloadBytes: 1_500,
			DeadlineUs:   1_000,
		})
	}
	v, err := Check(cfg)
	if err != nil {
		t.Fatalf("over-subscribed scenario could not be exercised: %v", err)
	}
	if !v.Unstable {
		t.Fatal("checker did not flag an over-subscribed scenario unstable")
	}
	if !v.Sound() {
		t.Fatalf("unstable scenario must not verdict violations, got %v", v.Violations)
	}
}

// TestVerdictDeterministic pins the whole check pipeline: the same
// scenario checked twice yields identical verdicts, including the
// worst-ratio float.
func TestVerdictDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		cfg := Generate(seed, Params{})
		a, err := Check(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Check(Generate(seed, Params{}))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		av := fmt.Sprintf("%+v", a)
		bv := fmt.Sprintf("%+v", b)
		if av != bv {
			t.Errorf("seed %d: verdict not deterministic:\n%s\n%s", seed, av, bv)
		}
	}
}
