package selftest

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Render writes a SimResult to a canonical textual form: every
// deterministic field, sorted keys, fixed formats. Two results are
// considered identical exactly when their renderings are byte-for-byte
// equal — this is the comparison the oracle test performs, and a useful
// debugging artifact when it fails (diff the two strings).
//
// The configuration is deliberately omitted (it is an input, not an
// outcome), as are the raw latency histograms (the Summary pins every
// sample through its running moments: count, min, max, mean, stddev).
func Render(res *core.SimResult) string {
	var b strings.Builder
	names := make([]string, 0, len(res.Flows))
	//rtlint:sorted-after
	for name := range res.Flows {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := res.Flows[name]
		fmt.Fprintf(&b, "flow %s: released=%d delivered=%d misses=%d lat{n=%d min=%d max=%d mean=%d stddev=%d}\n",
			name, f.Released, f.Delivered, f.DeadlineMisses,
			f.Latency.N(), int64(f.Latency.Min()), int64(f.Latency.Max()),
			int64(f.Latency.Mean()), int64(f.Latency.StdDev()))
	}
	fmt.Fprintf(&b, "classWorst=%v\n", res.ClassWorst)
	fmt.Fprintf(&b, "dropped=%d corrupted=%d shaped=%d events=%d\n",
		res.Dropped, res.Corrupted, res.Shaped, res.Events)
	fmt.Fprintf(&b, "planeDelivered=%v redundant=%d discarded=%d\n",
		res.PlaneDelivered, res.Redundant, res.Discarded)
	keys := make([]string, 0, len(res.PortMaxBacklog))
	//rtlint:sorted-after
	for k := range res.PortMaxBacklog {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "backlog %s: max=%d", k, int64(res.PortMaxBacklog[k]))
		if marks, ok := res.PortClassMaxBacklog[k]; ok {
			fmt.Fprintf(&b, " class=%v", marks)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
