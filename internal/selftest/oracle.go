// Package selftest cross-checks the optimized production simulator against
// a deliberately naive reference implementation.
//
// The production path (internal/core over internal/ethernet) is built for
// speed: interned integer edge IDs, pooled frames and event records,
// pre-bound handlers, ring buffers. Every one of those optimizations is a
// chance to corrupt a result without failing a test, so this package keeps
// a second simulator that makes the opposite trade everywhere: string keys,
// a fresh allocation per frame, a closure per event, slices popped from the
// front. It is too slow for experiments and exists only to be obviously
// correct. Oracle replays a workload through it; the test compares the two
// SimResults byte for byte (via Render) across every built-in topology
// family, both queueing disciplines, and redundant planes.
//
// Both simulators share only the pieces whose determinism they must agree
// on by construction: the DES kernel (event ordering), the traffic release
// processes, and the stats accumulators (float operation order). Everything
// between release and delivery — shapers, stations, switches, ports — is
// reimplemented here from the model's definition.
package selftest

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/ethernet"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// oFrame is the reference simulator's frame: a plain struct allocated fresh
// for every copy, carrying its connection by name.
type oFrame struct {
	src, dst string // MAC addresses, rendered as strings
	pcp      ethernet.PCP
	payload  int // application payload bytes
	conn     string
	seq, cp  int
	release  simtime.Time
}

// oFrameBytes is the buffered frame length (header through FCS, tagged,
// padded to the minimum) of a payload — restated from the frame layout
// rather than calling ethernet.Frame so the two simulators agree on sizes
// only if both restate IEEE 802.3 correctly.
func oFrameBytes(payload int) int {
	n := ethernet.HeaderBytes + ethernet.VLANTagBytes + payload + ethernet.FCSBytes
	if n < ethernet.MinFrameBytes {
		n = ethernet.MinFrameBytes
	}
	return n
}

// oWireSize is the full on-wire cost (preamble + frame + inter-frame gap).
func oWireSize(payload int) simtime.Size {
	return simtime.Bytes(ethernet.PreambleBytes + oFrameBytes(payload) + ethernet.InterFrameGapBytes)
}

// oQueue is a naive output-port queue: one slice per class (a single class
// under FCFS), popped from the front with a reslice.
type oQueue struct {
	priority bool
	capacity simtime.Size // per class; 0 = unbounded
	classes  [][]*oFrame
	backlog  []simtime.Size
	classMax []simtime.Size
	totalMax simtime.Size
	dropped  int
}

func newOQueue(priority bool, capacity simtime.Size) *oQueue {
	n := 1
	if priority {
		n = ethernet.NumClasses
	}
	return &oQueue{
		priority: priority,
		capacity: capacity,
		classes:  make([][]*oFrame, n),
		backlog:  make([]simtime.Size, n),
		classMax: make([]simtime.Size, n),
	}
}

func (q *oQueue) classOf(f *oFrame) int {
	if !q.priority {
		return 0
	}
	return ethernet.ClassOfPCP(f.pcp)
}

func (q *oQueue) enqueue(f *oFrame) bool {
	c := q.classOf(f)
	sz := simtime.Bytes(oFrameBytes(f.payload))
	if q.capacity > 0 && q.backlog[c]+sz > q.capacity {
		q.dropped++
		return false
	}
	q.classes[c] = append(q.classes[c], f)
	q.backlog[c] += sz
	if q.backlog[c] > q.classMax[c] {
		q.classMax[c] = q.backlog[c]
	}
	var total simtime.Size
	for _, b := range q.backlog {
		total += b
	}
	if total > q.totalMax {
		q.totalMax = total
	}
	return true
}

func (q *oQueue) dequeue() *oFrame {
	for c := range q.classes {
		if len(q.classes[c]) > 0 {
			f := q.classes[c][0]
			q.classes[c] = q.classes[c][1:]
			q.backlog[c] -= simtime.Bytes(oFrameBytes(f.payload))
			return f
		}
	}
	return nil
}

// oPort is a naive transmitter: on every transmission it schedules two
// fresh closures — delivery after serialization plus propagation, and
// transmitter release after serialization plus the inter-frame gap. The
// event times and their creation order match the production port exactly;
// only the bookkeeping differs.
type oPort struct {
	sim     *des.Simulator
	q       *oQueue
	rate    simtime.Rate
	prop    simtime.Duration
	deliver func(*oFrame)
	busy    bool
}

func (p *oPort) send(f *oFrame) bool {
	if !p.q.enqueue(f) {
		return false
	}
	p.kick()
	return true
}

func (p *oPort) kick() {
	if p.busy {
		return
	}
	f := p.q.dequeue()
	if f == nil {
		return
	}
	p.busy = true
	serialize := simtime.TransmissionTime(simtime.Bytes(ethernet.PreambleBytes+oFrameBytes(f.payload)), p.rate)
	ifg := simtime.TransmissionTime(simtime.Bytes(ethernet.InterFrameGapBytes), p.rate)
	p.sim.After(serialize+p.prop, func() { p.deliver(f) })
	p.sim.After(serialize+ifg, func() {
		p.busy = false
		p.kick()
	})
}

// oSwitch is a naive store-and-forward switch: the forwarding database maps
// MAC strings to output-port key strings, and every fabric crossing is its
// own closure fired after the relay latency.
type oSwitch struct {
	sim     *des.Simulator
	latency simtime.Duration
	fdb     map[string]string
	ports   map[string]*oPort
}

func (s *oSwitch) receive(in string, f *oFrame) {
	s.fdb[f.src] = in // source learning (oracle MACs are always unicast)
	if out, ok := s.fdb[f.dst]; ok {
		if out != in { // never reflect back out the ingress port
			s.relay(s.ports[out], f)
		}
		return
	}
	// Flood on unknown destination. Statically configured networks never
	// take this path; iterate sorted for determinism anyway.
	keys := make([]string, 0, len(s.ports))
	//rtlint:sorted-after
	for k := range s.ports {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if k != in {
			s.relay(s.ports[k], f)
		}
	}
}

func (s *oSwitch) relay(out *oPort, f *oFrame) {
	s.sim.After(s.latency, func() { out.send(f) })
}

// oShaper is a naive greedy token-bucket shaper. The bucket arithmetic is
// restated in exact integer bit-nanoseconds — the same quantities as
// shaper.TokenBucket, written straight-line — because the wake instants
// must agree to the nanosecond for the event streams to match.
type oShaper struct {
	sim      *des.Simulator
	capacity simtime.Size
	rate     simtime.Rate
	out      func(*oFrame)

	tokens simtime.Size
	rem    int64 // bit-nanoseconds toward the next whole bit
	last   simtime.Time

	pending    []*oFrame
	armed      bool
	headWaited bool
	shaped     int
}

func newOShaper(sim *des.Simulator, capacity simtime.Size, rate simtime.Rate, out func(*oFrame)) *oShaper {
	// Full at creation: the critical-instant initial condition.
	return &oShaper{sim: sim, capacity: capacity, rate: rate, out: out, tokens: capacity, last: sim.Now()}
}

func (s *oShaper) advance(now simtime.Time) {
	elapsed := int64(now.Sub(s.last))
	s.last = now
	if s.tokens >= s.capacity {
		s.rem = 0
		return
	}
	total := elapsed*int64(s.rate) + s.rem
	s.tokens += simtime.Size(total / int64(simtime.Second))
	s.rem = total % int64(simtime.Second)
	if s.tokens >= s.capacity {
		s.tokens = s.capacity
		s.rem = 0
	}
}

func (s *oShaper) submit(f *oFrame) {
	s.pending = append(s.pending, f)
	if len(s.pending) == 1 && !s.armed {
		s.release()
	}
}

func (s *oShaper) release() {
	now := s.sim.Now()
	for len(s.pending) > 0 {
		f := s.pending[0]
		need := oWireSize(f.payload)
		s.advance(now)
		if s.tokens < need {
			break
		}
		s.tokens -= need
		s.pending = s.pending[1:]
		if s.headWaited {
			s.shaped++
			s.headWaited = false
		}
		s.out(f)
	}
	if len(s.pending) == 0 {
		return
	}
	// The head frame waits for tokens: wake when they will have accrued.
	s.headWaited = true
	deficit := oWireSize(s.pending[0].payload) - s.tokens
	wait := (int64(deficit)*int64(simtime.Second) - s.rem + int64(s.rate) - 1) / int64(s.rate)
	s.armed = true
	s.sim.At(now.Add(simtime.Duration(wait)), func() {
		s.armed = false
		s.release()
	})
}

// oracle is one reference simulation. All state is keyed by strings:
// stations by name, ports by their plane-qualified directed-edge key,
// forwarding entries by MAC string, dedup slots by "seq#copy".
type oracle struct {
	set    *traffic.Set
	cfg    core.SimConfig
	topo   *topology.Network
	sim    *des.Simulator
	planes int
	prio   bool
	res    *core.SimResult

	macOf    map[string]string           // station name → MAC
	msgOf    map[string]*traffic.Message // connection name → message
	dstOf    map[string]string           // connection name → dest MAC
	shapers  map[string]*oShaper         // connection name → shaper
	uplinks  map[string]*oPort           // plane prefix + station name → uplink
	ports    map[string]*oPort           // plane-qualified edge key → port
	switches map[string]*oSwitch         // plane prefix + "sw<i>" → switch
	seen     map[string]map[string]simtime.Time
}

// Oracle replays the workload through the naive reference simulator and
// returns a SimResult that must match core.SimulateNetwork byte for byte
// (compare with Render). Trace hooks and the bit-error model are outside
// its scope — it exists to pin the deterministic frame path.
func Oracle(set *traffic.Set, cfg core.SimConfig, topo *topology.Network) (*core.SimResult, error) {
	switch {
	case cfg.BER > 0:
		return nil, fmt.Errorf("selftest: the oracle models a clean medium (BER=0)")
	case cfg.Recorder != nil || cfg.PCAP != nil:
		return nil, fmt.Errorf("selftest: the oracle has no trace hooks")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if err := topo.Validate(set.Stations()); err != nil {
		return nil, err
	}
	nextHop, err := topo.NextHops()
	if err != nil {
		return nil, err
	}

	o := &oracle{
		set:      set,
		cfg:      cfg,
		topo:     topo,
		sim:      des.New(cfg.Seed),
		planes:   topo.PlaneCount(),
		prio:     cfg.Approach == analysis.Priority,
		res:      &core.SimResult{Cfg: cfg, Flows: map[string]*core.FlowSim{}},
		macOf:    map[string]string{},
		msgOf:    map[string]*traffic.Message{},
		dstOf:    map[string]string{},
		shapers:  map[string]*oShaper{},
		uplinks:  map[string]*oPort{},
		ports:    map[string]*oPort{},
		switches: map[string]*oSwitch{},
		seen:     map[string]map[string]simtime.Time{},
	}

	names := set.Stations()
	for i, name := range names {
		o.macOf[name] = ethernet.StationAddr(i).String()
	}
	for _, m := range set.Messages {
		fs := &core.FlowSim{Msg: m}
		if cfg.CollectLatencies {
			fs.Latencies = &stats.Histogram{}
		}
		o.res.Flows[m.Name] = fs
		o.msgOf[m.Name] = m
		o.dstOf[m.Name] = o.macOf[m.Dest]
		o.seen[m.Name] = map[string]simtime.Time{}
	}
	if o.planes > 1 {
		o.res.PlaneDelivered = make([]int, o.planes)
	}

	// Fabric, plane by plane. Edge keys are restated from the naming
	// convention ("<from>-><to>", switches labeled "sw<i>", plane prefix
	// "n<p>.") rather than asked of the topology's interned table — the
	// oracle independently derives what the production Finish renders.
	for p := 0; p < o.planes; p++ {
		pre := ""
		if o.planes > 1 {
			pre = fmt.Sprintf("n%d.", p)
		}
		for s := 0; s < topo.Switches; s++ {
			o.switches[pre+swName(s)] = &oSwitch{
				sim:     o.sim,
				latency: cfg.TTechno,
				fdb:     map[string]string{},
				ports:   map[string]*oPort{},
			}
		}
		// Trunks: one port per direction, delivering into the far switch
		// with the far side's own port key as the ingress label.
		for li, l := range topo.Links {
			a, b := l[0], l[1]
			rate, prop := topo.PlaneTrunkRate(p, li, cfg.LinkRate), topo.PlaneTrunkProp(p, li)
			keyAB := pre + swName(a) + "->" + swName(b)
			keyBA := pre + swName(b) + "->" + swName(a)
			swA, swB := o.switches[pre+swName(a)], o.switches[pre+swName(b)]
			swA.ports[keyAB] = &oPort{sim: o.sim, q: newOQueue(o.prio, o.capacityOf(p, swName(a)+"->"+swName(b))), rate: rate, prop: prop,
				deliver: func(f *oFrame) { swB.receive(keyBA, f) }}
			swB.ports[keyBA] = &oPort{sim: o.sim, q: newOQueue(o.prio, o.capacityOf(p, swName(b)+"->"+swName(a))), rate: rate, prop: prop,
				deliver: func(f *oFrame) { swA.receive(keyAB, f) }}
			o.ports[keyAB] = swA.ports[keyAB]
			o.ports[keyBA] = swB.ports[keyBA]
		}
		// Stations: a destination port on the home switch delivering to the
		// receiver, and an uplink port delivering into the home switch with
		// the destination port's key as the ingress label.
		for _, name := range names {
			name := name
			home := topo.StationSwitch[name]
			sw := o.switches[pre+swName(home)]
			rate, prop := topo.PlaneStationRate(p, name, cfg.LinkRate), topo.PlaneStationProp(p, name)
			destKey := pre + swName(home) + "->" + name
			upKey := pre + name + "->" + swName(home)
			recv := o.makeReceive(p, name)
			sw.ports[destKey] = &oPort{sim: o.sim, q: newOQueue(o.prio, o.capacityOf(p, swName(home)+"->"+name)), rate: rate, prop: prop, deliver: recv}
			up := &oPort{sim: o.sim, q: newOQueue(o.prio, o.capacityOf(p, name+"->"+swName(home))), rate: rate, prop: prop,
				deliver: func(f *oFrame) { sw.receive(destKey, f) }}
			o.ports[destKey] = sw.ports[destKey]
			o.ports[upKey] = up
			o.uplinks[pre+name] = up
			// Static forwarding: the home switch knows the station's port,
			// every other switch points toward its next hop.
			sw.fdb[o.macOf[name]] = destKey
			for s := 0; s < topo.Switches; s++ {
				if s == home {
					continue
				}
				o.switches[pre+swName(s)].fdb[o.macOf[name]] = pre + swName(s) + "->" + swName(nextHop[s][home])
			}
		}
	}

	// Per-connection shapers, dimensioned exactly as the analysis declares.
	specs := analysis.Specs(set, cfg.AnalysisConfig())
	for _, spec := range specs {
		m := spec.Msg
		src := m.Source
		o.shapers[m.Name] = newOShaper(o.sim, spec.B, spec.R, func(f *oFrame) { o.send(src, f) })
	}

	// Traffic last, exactly as production setup does, so the initial event
	// sequence numbers coincide.
	stop := traffic.Start(o.sim, set, traffic.SourceConfig{Mode: cfg.Mode, MeanSlack: cfg.MeanSlack, AlignPhases: cfg.AlignPhases}, o.onRelease)

	o.sim.RunFor(cfg.Horizon)
	stop()
	return o.finish(), nil
}

func swName(i int) string { return fmt.Sprintf("sw%d", i) }

// capacityOf resolves a queue's byte capacity with the documented
// precedence: plane-qualified key, then bare key, then the global default —
// a present key winning even at 0 (explicitly unbounded).
func (o *oracle) capacityOf(p int, bare string) simtime.Size {
	if o.planes > 1 {
		if c, ok := o.cfg.QueueCapacities[fmt.Sprintf("n%d.", p)+bare]; ok {
			return c
		}
	}
	if c, ok := o.cfg.QueueCapacities[bare]; ok {
		return c
	}
	return o.cfg.QueueCapacity
}

// onRelease turns one released instance into per-copy frames through the
// connection's shaper (or straight into the network when bypassed).
func (o *oracle) onRelease(in traffic.Instance) {
	m := in.Msg
	o.res.Flows[m.Name].Released++
	copies := 1
	if m.Name == o.cfg.Babbler && o.cfg.BabbleFactor > 1 {
		copies = o.cfg.BabbleFactor
	}
	for c := 0; c < copies; c++ {
		f := &oFrame{
			dst:     o.dstOf[m.Name],
			pcp:     ethernet.PCPOfClass(int(m.Priority)),
			payload: m.Payload.ByteCount(),
			conn:    m.Name,
			seq:     in.Seq,
			cp:      c,
			release: in.Release,
		}
		if o.cfg.BypassShapers {
			o.send(m.Source, f)
			continue
		}
		o.shapers[m.Name].submit(f)
	}
}

// send replicates a shaped frame onto every surviving plane, honoring each
// plane's phase skew with a per-copy closure.
func (o *oracle) send(src string, f *oFrame) {
	if o.planes == 1 {
		o.sendOn(0, src, f)
		return
	}
	for p := 0; p < o.planes; p++ {
		if o.topo.PlaneFailed(p) {
			continue
		}
		g := *f
		if skew := o.topo.PlanePhaseSkew(p); skew > 0 {
			p := p
			o.sim.After(skew, func() { o.sendOn(p, src, &g) })
		} else {
			o.sendOn(p, src, &g)
		}
	}
}

// sendOn stamps the source MAC and submits one copy to plane p's uplink,
// counting a drop if the multiplexer rejects it.
func (o *oracle) sendOn(p int, src string, f *oFrame) {
	f.src = o.macOf[src]
	pre := ""
	if o.planes > 1 {
		pre = fmt.Sprintf("n%d.", p)
	}
	if !o.uplinks[pre+src].send(f) {
		o.res.Dropped++
	}
}

// makeReceive is the reception handler of one station on one plane:
// first-copy-wins redundancy management inside the acceptance window, then
// latency accounting.
func (o *oracle) makeReceive(p int, name string) func(*oFrame) {
	_ = name
	return func(f *oFrame) {
		now := o.sim.Now()
		res := o.res
		fs := res.Flows[f.conn]
		m := o.msgOf[f.conn]
		if o.planes > 1 {
			res.PlaneDelivered[p]++
			slot := fmt.Sprintf("%d#%d", f.seq, f.cp)
			if first, dup := o.seen[f.conn][slot]; dup {
				win := o.cfg.SkewMax
				if m.SkewMax > 0 {
					// Per-VL window override, mirroring the production
					// receiver's resolution order.
					win = m.SkewMax
				}
				if win > 0 && now.Sub(first) > win {
					res.Discarded++
				} else {
					res.Redundant++
				}
				return
			}
			o.seen[f.conn][slot] = now
		}
		lat := now.Sub(f.release)
		fs.Latency.Add(lat)
		if fs.Latencies != nil {
			fs.Latencies.Add(lat)
		}
		fs.Delivered++
		if lat > m.Deadline {
			fs.DeadlineMisses++
		}
		if lat > res.ClassWorst[m.Priority] {
			res.ClassWorst[m.Priority] = lat
		}
	}
}

// finish collects counters exactly as the production Finish does: switch
// output-queue drops (uplink rejections were counted live), every queue's
// high-water marks under its plane-qualified edge key, shaper totals, and
// the executed-event count.
func (o *oracle) finish() *core.SimResult {
	res := o.res
	//rtlint:unordered commutative sum of per-port drop counters
	for _, sw := range o.switches {
		//rtlint:unordered commutative sum of per-port drop counters
		for _, port := range sw.ports {
			res.Dropped += port.q.dropped
		}
	}
	res.PortMaxBacklog = make(map[string]simtime.Size, len(o.ports))
	if o.prio {
		res.PortClassMaxBacklog = make(map[string][]simtime.Size, len(o.ports))
	}
	//rtlint:unordered map fill, one key at a time
	for key, port := range o.ports {
		res.PortMaxBacklog[key] = port.q.totalMax
		if o.prio {
			res.PortClassMaxBacklog[key] = append([]simtime.Size(nil), port.q.classMax...)
		}
	}
	//rtlint:unordered commutative sum of shaper counters
	for _, sh := range o.shapers {
		res.Shaped += sh.shaped
	}
	res.Events = o.sim.Executed()
	return res
}
