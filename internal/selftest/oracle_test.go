package selftest

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// sparseSet is the oracle workload: a handful of connections across six
// stations, mixing kinds, priorities, payload sizes and periods, with two
// connections converging on one destination so output ports actually queue.
func sparseSet() *traffic.Set {
	return &traffic.Set{Messages: []*traffic.Message{
		{Name: "nav/att", Source: "nav", Dest: "fms", Kind: traffic.Periodic,
			Period: 20 * simtime.Millisecond, Payload: simtime.Bytes(256),
			Deadline: 20 * simtime.Millisecond, Priority: traffic.P1},
		{Name: "rdr/trk", Source: "rdr", Dest: "fms", Kind: traffic.Sporadic,
			Period: 40 * simtime.Millisecond, Payload: simtime.Bytes(1024),
			Deadline: 40 * simtime.Millisecond, Priority: traffic.P2},
		{Name: "fms/cmd", Source: "fms", Dest: "act", Kind: traffic.Sporadic,
			Period: 20 * simtime.Millisecond, Payload: simtime.Bytes(64),
			Deadline: 3 * simtime.Millisecond, Priority: traffic.P0},
		{Name: "iff/sts", Source: "iff", Dest: "dsp", Kind: traffic.Sporadic,
			Period: 160 * simtime.Millisecond, Payload: simtime.Bytes(512),
			Deadline: 320 * simtime.Millisecond, Priority: traffic.P3},
		{Name: "dsp/ack", Source: "dsp", Dest: "nav", Kind: traffic.Periodic,
			Period: 80 * simtime.Millisecond, Payload: simtime.Bytes(128),
			Deadline: 80 * simtime.Millisecond, Priority: traffic.P1},
	}}
}

// compare runs both simulators on the same inputs and fails with a line
// diff when their canonical renderings differ in any byte.
func compare(t *testing.T, set *traffic.Set, cfg core.SimConfig, topo *topology.Network) *core.SimResult {
	t.Helper()
	want, err := Oracle(set, cfg, topo)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	got, err := core.SimulateNetwork(set, cfg, topo)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	wantR, gotR := Render(want), Render(got)
	if wantR != gotR {
		wl, gl := strings.Split(wantR, "\n"), strings.Split(gotR, "\n")
		for i := 0; i < len(wl) || i < len(gl); i++ {
			var w, g string
			if i < len(wl) {
				w = wl[i]
			}
			if i < len(gl) {
				g = gl[i]
			}
			if w != g {
				t.Errorf("line %d:\n  oracle:    %q\n  simulator: %q", i+1, w, g)
			}
		}
		t.Fatalf("simulator diverged from the reference oracle")
	}
	return got
}

// TestOracleMatchesSimulator replays the sparse workload through the naive
// reference simulator and the production engine on every built-in topology
// family under both queueing disciplines, demanding byte-identical results.
// This is the guard on the hot-loop optimizations: interned edge IDs,
// pooled frames and events, pre-bound handlers must change performance
// only, never outcomes.
func TestOracleMatchesSimulator(t *testing.T) {
	set := sparseSet()
	for _, fam := range topology.Families() {
		for _, ap := range []analysis.Approach{analysis.FCFS, analysis.Priority} {
			fam, ap := fam, ap
			t.Run(fam.Key+"/"+ap.String(), func(t *testing.T) {
				cfg := core.DefaultSimConfig(ap)
				cfg.Horizon = 400 * simtime.Millisecond
				res := compare(t, set, cfg, fam.Build(set.Stations()))
				if res.TotalDelivered() == 0 {
					t.Fatal("workload delivered nothing — the comparison is vacuous")
				}
			})
		}
	}
}

// TestOracleDualPlanes pins the redundancy-management path: every copy is
// replicated onto both planes of a dual star, so the receiver must observe
// one redundant copy per delivered instance on both simulators.
func TestOracleDualPlanes(t *testing.T) {
	set := sparseSet()
	cfg := core.DefaultSimConfig(analysis.Priority)
	cfg.Horizon = 400 * simtime.Millisecond
	topo := topology.Redundify(topology.Star(set.Stations()), 2)
	res := compare(t, set, cfg, topo)
	if res.Redundant == 0 {
		t.Error("dual planes produced no redundant copies — dedup path untested")
	}
}

// TestOracleSkewWindow pins the ARINC 664 integrity check: with plane B
// 100µs late and a 20µs acceptance window, its copies must be rejected as
// integrity violations, identically in both simulators.
func TestOracleSkewWindow(t *testing.T) {
	set := sparseSet()
	fam, err := topology.FamilyByKey("dualskew")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultSimConfig(analysis.Priority)
	cfg.Horizon = 400 * simtime.Millisecond
	cfg.SkewMax = 20 * simtime.Microsecond
	res := compare(t, set, cfg, fam.Build(set.Stations()))
	if res.Discarded == 0 {
		t.Error("skewed plane inside the window — integrity-check path untested")
	}
}

// TestOracleVLSkewWindow pins the per-VL override of the acceptance
// window: one connection narrows its own window to 20µs under an
// unbounded global one, so only its duplicates become integrity
// discards — identically in both simulators.
func TestOracleVLSkewWindow(t *testing.T) {
	set := sparseSet()
	set.Messages[0].SkewMax = 20 * simtime.Microsecond
	fam, err := topology.FamilyByKey("dualskew")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultSimConfig(analysis.Priority)
	cfg.Horizon = 400 * simtime.Millisecond
	res := compare(t, set, cfg, fam.Build(set.Stations()))
	if res.Discarded == 0 {
		t.Error("per-VL window produced no discards — override path untested")
	}
	if res.Redundant == 0 {
		t.Error("flows inheriting the unbounded window produced no redundant copies")
	}
}

// TestOracleBabbler pins the shaping path: a babbling source releases four
// copies per instance through a bucket sized for one, so the shaper must
// delay the excess — and both simulators must agree on exactly when each
// delayed frame conforms.
func TestOracleBabbler(t *testing.T) {
	set := sparseSet()
	cfg := core.DefaultSimConfig(analysis.Priority)
	cfg.Horizon = 400 * simtime.Millisecond
	cfg.Babbler = "rdr/trk"
	cfg.BabbleFactor = 4
	res := compare(t, set, cfg, topology.Star(set.Stations()))
	if res.Shaped == 0 {
		t.Error("babbling source was never shaped — token-bucket wait path untested")
	}
}

// TestOracleBoundedQueues pins the loss path and the capacity-precedence
// resolution: a tight per-queue capacity on the babbler's uplink forces
// drops, with a plane-qualified override on one plane of a dual network.
func TestOracleBoundedQueues(t *testing.T) {
	set := sparseSet()
	cfg := core.DefaultSimConfig(analysis.FCFS)
	cfg.Horizon = 400 * simtime.Millisecond
	cfg.Babbler = "rdr/trk"
	cfg.BabbleFactor = 4
	cfg.BypassShapers = true // unshaped babble floods the uplink queue
	cfg.QueueCapacities = map[string]simtime.Size{
		"rdr->sw0":    simtime.Bytes(1100), // one tagged 1024B frame fits, two do not
		"n1.rdr->sw0": simtime.Bytes(5000), // plane B rides a roomier override
	}
	topo := topology.Redundify(topology.Star(set.Stations()), 2)
	res := compare(t, set, cfg, topo)
	if res.Dropped == 0 {
		t.Error("bounded uplink dropped nothing — loss path untested")
	}
}
