package des

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xoshiro256**). The standard library's math/rand would
// also do, but owning the algorithm guarantees that simulation traces remain
// stable across Go releases — reproducibility of experiment outputs is a
// stated goal of this artifact.
type RNG struct {
	s [4]uint64
}

// NewRNG builds a generator from a 64-bit seed. Distinct seeds yield
// independent-looking streams; the all-zero internal state is impossible
// because splitmix64 never maps a seed to four zero outputs in a row.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed over the 256-bit state.
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// SplitSeed derives the seed of substream i from a root seed. It is a pure
// function of (root, i): scenario sweeps hand substream i to the worker that
// evaluates point i, so results are bit-identical at any worker count and
// independent of scheduling order. The mixing is two rounds of the
// splitmix64 finalizer over root and i, which decorrelates even adjacent
// (root, i) pairs.
func SplitSeed(root, i uint64) uint64 {
	mix := func(z uint64) uint64 {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	return mix(mix(root+0x9e3779b97f4a7c15) + i*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb)
}

// Stream returns the generator of substream i of the given root seed; see
// SplitSeed for the determinism contract.
func Stream(root, i uint64) *RNG { return NewRNG(SplitSeed(root, i)) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n ≤ 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("des: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded output.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	w0 := t & mask
	k := t >> 32
	t = aHi*bLo + k
	w1 := t & mask
	w2 := t >> 32
	t = aLo*bHi + w1
	k = t >> 32
	hi = aHi*bHi + w2 + k
	lo = (t << 32) + w0
	return hi, lo
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform duration in [0, max). max must be positive.
func (r *RNG) Duration(max int64) int64 {
	if max <= 0 {
		panic("des: Duration with non-positive max")
	}
	return int64(r.Uint64() % uint64(max))
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Exponential returns an exponentially distributed value with the given
// mean, truncated to float64 precision. Used to stress-test sporadic
// sources beyond their paper-specified minimum inter-arrival behaviour.
func (r *RNG) Exponential(mean float64) float64 {
	// Inverse CDF; guard against log(0).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(1-u)
}
