package des

import (
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30 {
		t.Errorf("clock = %v, want 30", s.Now())
	}
	if s.Executed() != 3 {
		t.Errorf("executed = %d, want 3", s.Executed())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated FIFO: order = %v", order)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	s := New(1)
	var at simtime.Time
	s.After(5*simtime.Millisecond, func() {
		at = s.Now()
		s.After(simtime.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != simtime.Time(6*simtime.Millisecond) {
		t.Errorf("nested After fired at %v, want 6ms", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil handler should panic")
		}
	}()
	New(1).At(0, nil)
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay should panic")
		}
	}()
	New(1).After(-1, func() {})
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	ref := s.At(10, func() { fired = true })
	if !ref.Valid() {
		t.Fatal("fresh ref should be valid")
	}
	s.Cancel(ref)
	if ref.Valid() {
		t.Error("canceled ref should be invalid")
	}
	s.Cancel(ref) // double-cancel is a no-op
	s.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d, want 0", s.Pending())
	}
}

func TestCancelOneOfMany(t *testing.T) {
	s := New(1)
	var got []int
	refs := make([]EventRef, 5)
	for i := 0; i < 5; i++ {
		i := i
		refs[i] = s.At(simtime.Time(i*10), func() { got = append(got, i) })
	}
	s.Cancel(refs[2])
	s.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCancelAfterFireIsNoOp(t *testing.T) {
	s := New(1)
	ref := s.At(10, func() {})
	s.Run()
	if ref.Valid() {
		t.Error("fired ref should be invalid")
	}
	// The fired record is back on the free list; a later schedule reuses
	// it. Canceling the stale ref must not kill the new event.
	fired := false
	s.At(20, func() { fired = true })
	s.Cancel(ref)
	s.Run()
	if !fired {
		t.Error("stale Cancel killed a recycled event")
	}
}

func TestPendingCounter(t *testing.T) {
	s := New(1)
	refs := make([]EventRef, 6)
	for i := range refs {
		refs[i] = s.At(simtime.Time(10*(i+1)), func() {})
	}
	if s.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", s.Pending())
	}
	s.Cancel(refs[1])
	s.Cancel(refs[1]) // double cancel must not double-decrement
	if s.Pending() != 5 {
		t.Errorf("pending after cancel = %d, want 5", s.Pending())
	}
	s.RunUntil(30) // delivers events at 10 and 30 (20 was canceled)
	if s.Pending() != 3 {
		t.Errorf("pending after partial run = %d, want 3", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Errorf("pending after drain = %d, want 0", s.Pending())
	}
}

func TestEventPoolRecycles(t *testing.T) {
	// After a schedule/fire cycle the kernel must reuse records instead
	// of growing: run many one-event generations and check the free list
	// stays bounded at the high-water mark of concurrently pending events.
	s := New(1)
	for i := 0; i < 1000; i++ {
		s.After(1, func() {})
		s.Run()
	}
	if len(s.pool.free) > 2 {
		t.Errorf("free list grew to %d records for 1 pending event", len(s.pool.free))
	}
}

func TestSharedPoolReusesAcrossSimulators(t *testing.T) {
	// A sweep worker's sims share one pool: records warmed by the first
	// run must serve the second without growing the free list.
	pool := &Pool{}
	for round := 0; round < 3; round++ {
		s := NewWithPool(uint64(round+1), pool)
		for i := 0; i < 100; i++ {
			s.After(simtime.Duration(i+1), func() {})
		}
		s.Run()
	}
	if got := len(pool.free); got > 101 {
		t.Errorf("shared free list grew to %d records for 100 pending events", got)
	}
	if got := len(pool.free); got == 0 {
		t.Errorf("shared free list empty after three runs; pooling not happening")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []simtime.Time
	for _, at := range []simtime.Time{10, 20, 30, 40} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v before deadline 25", fired)
	}
	if s.Now() != 25 {
		t.Errorf("clock = %v, want exactly 25", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v after second RunUntil", fired)
	}
	if s.Now() != 100 {
		t.Errorf("clock = %v, want 100", s.Now())
	}
}

func TestRunFor(t *testing.T) {
	s := New(1)
	n := 0
	s.Every(0, 10*simtime.Millisecond, func() { n++ })
	s.RunFor(95 * simtime.Millisecond)
	if n != 10 { // t = 0,10,...,90
		t.Errorf("ticks = %d, want 10", n)
	}
}

func TestEveryStop(t *testing.T) {
	s := New(1)
	n := 0
	var stop func()
	stop = s.Every(0, simtime.Millisecond, func() {
		n++
		if n == 3 {
			stop()
		}
	})
	s.RunFor(simtime.Second)
	if n != 3 {
		t.Errorf("ticks after stop = %d, want 3", n)
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d after stop", s.Pending())
	}
}

func TestEveryPhase(t *testing.T) {
	s := New(1)
	var first simtime.Time = -1
	s.Every(7*simtime.Millisecond, 20*simtime.Millisecond, func() {
		if first < 0 {
			first = s.Now()
		}
	})
	s.RunFor(simtime.Second)
	if first != simtime.Time(7*simtime.Millisecond) {
		t.Errorf("first tick at %v, want 7ms", first)
	}
}

func TestEveryZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period should panic")
		}
	}()
	New(1).Every(0, 0, func() {})
}

func TestTracer(t *testing.T) {
	s := New(1)
	var seen []simtime.Time
	s.SetTracer(func(at simtime.Time) { seen = append(seen, at) })
	s.At(5, func() {})
	s.At(9, func() {})
	s.Run()
	if len(seen) != 2 || seen[0] != 5 || seen[1] != 9 {
		t.Errorf("tracer saw %v", seen)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed uint64) []uint64 {
		s := New(seed)
		var out []uint64
		// A little chaotic model: events reschedule themselves with random
		// delays drawn from the simulator's RNG.
		var step Handler
		count := 0
		step = func() {
			count++
			out = append(out, s.RNG().Uint64()%1000, uint64(s.Now()))
			if count < 200 {
				s.After(simtime.Duration(s.RNG().Duration(int64(simtime.Millisecond))), step)
			}
		}
		s.At(0, step)
		s.Run()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestRNGIntnUnbiasedRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGExponentialPositive(t *testing.T) {
	r := NewRNG(13)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Exponential(5)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 4.5 || mean > 5.5 {
		t.Errorf("empirical mean %v too far from 5", mean)
	}
}

func TestRNGPanics(t *testing.T) {
	r := NewRNG(1)
	for name, f := range map[string]func(){
		"Intn(0)":      func() { r.Intn(0) },
		"Duration(0)":  func() { r.Duration(0) },
		"Duration(-1)": func() { r.Duration(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMul64(t *testing.T) {
	tests := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{0xffffffffffffffff, 2, 1, 0xfffffffffffffffe},
		{0xffffffffffffffff, 0xffffffffffffffff, 0xfffffffffffffffe, 1},
	}
	for _, tc := range tests {
		hi, lo := mul64(tc.a, tc.b)
		if hi != tc.hi || lo != tc.lo {
			t.Errorf("mul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", tc.a, tc.b, hi, lo, tc.hi, tc.lo)
		}
	}
}

// Property: clock never goes backwards across an arbitrary schedule.
func TestClockMonotone(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(99)
		last := simtime.Time(-1)
		ok := true
		s.SetTracer(func(at simtime.Time) {
			if at < last {
				ok = false
			}
			last = at
		})
		for _, d := range delays {
			s.At(simtime.Time(d), func() {})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Every fires exactly floor((horizon-phase)/period)+1 times when
// phase ≤ horizon.
func TestEveryCount(t *testing.T) {
	f := func(phaseRaw, periodRaw uint16) bool {
		phase := simtime.Duration(phaseRaw)
		period := simtime.Duration(periodRaw%1000) + 1
		horizon := simtime.Duration(100_000)
		s := New(5)
		n := int64(0)
		s.Every(phase, period, func() { n++ })
		s.RunFor(horizon)
		var want int64
		if phase <= horizon {
			want = int64((horizon-phase)/period) + 1
		}
		return n == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
