package des

import (
	"testing"

	"repro/internal/simtime"
)

// BenchmarkDES measures the kernel's hottest loop — schedule one event,
// deliver it, schedule the next — the shape every port serializer and
// periodic source reduces to. With the event free-list this path performs
// zero heap allocations per event.
func BenchmarkDES(b *testing.B) {
	sim := New(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			sim.After(1000, tick)
		}
	}
	sim.At(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	sim.Run()
}

// BenchmarkDESFanOut measures bursts: each delivered event schedules four
// more (a frame arriving at a switch fans out to relay + serializer +
// IFG + receiver completion), bounded by recycling the fired events.
func BenchmarkDESFanOut(b *testing.B) {
	sim := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4; j++ {
			sim.After(simtime.Duration(j+1), func() {})
		}
		sim.RunFor(10)
	}
}

// BenchmarkDESCancel measures the schedule-then-cancel path (shaper
// wake-ups and stopped periodic sources).
func BenchmarkDESCancel(b *testing.B) {
	sim := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := sim.After(1000, func() {})
		sim.Cancel(ref)
	}
}
