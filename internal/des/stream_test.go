package des

import "testing"

func TestSplitSeedDeterministic(t *testing.T) {
	if SplitSeed(1, 0) != SplitSeed(1, 0) {
		t.Error("SplitSeed is not a pure function")
	}
	a, b := Stream(1, 3), Stream(1, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical (root, i) streams diverge")
		}
	}
}

func TestSplitSeedDistinct(t *testing.T) {
	// Adjacent roots and adjacent indices must all land on distinct seeds,
	// and the streams must not obviously correlate.
	seen := map[uint64]bool{}
	for root := uint64(0); root < 16; root++ {
		for i := uint64(0); i < 64; i++ {
			s := SplitSeed(root, i)
			if seen[s] {
				t.Fatalf("SplitSeed(%d, %d) collides", root, i)
			}
			seen[s] = true
		}
	}
	a, b := Stream(7, 0), Stream(7, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent substreams agree on %d of 64 draws", same)
	}
}

func TestStreamIndependentOfDrawOrder(t *testing.T) {
	// Drawing from substream 5 must not depend on whether substreams 0–4
	// were ever instantiated — the property the parallel sweep relies on.
	want := Stream(42, 5).Uint64()
	for i := uint64(0); i < 5; i++ {
		_ = Stream(42, i).Uint64()
	}
	if got := Stream(42, 5).Uint64(); got != want {
		t.Error("substream depends on sibling instantiation")
	}
}
