// Package des implements the discrete-event simulation kernel that drives
// every simulator in this repository (the switched-Ethernet model and the
// MIL-STD-1553B baseline bus).
//
// The kernel is a classic event-list simulator: events carry a virtual
// timestamp, a monotonically increasing sequence number for deterministic
// tie-breaking, and a callback. The scheduler pops the earliest event,
// advances the virtual clock to its timestamp, and runs the callback, which
// may schedule further events. Because ties are broken by insertion order,
// a simulation with a fixed seed is fully deterministic: the same inputs
// always produce the same event trace, byte for byte.
//
// Event records are pooled: a fired or canceled event returns to a
// free list and is reused by the next At/After, so the steady-state
// scheduling path performs no heap allocation. A per-event generation
// counter keeps stale EventRefs (to fired, canceled, or recycled events)
// safely invalid.
package des

import (
	"container/heap"
	"fmt"

	"repro/internal/simtime"
)

// Handler is the callback executed when an event fires. It runs with the
// simulation clock already advanced to the event's timestamp.
type Handler func()

// event is a scheduled callback.
type event struct {
	at    simtime.Time
	seq   uint64 // tie-break: FIFO among equal timestamps
	fn    Handler
	index int // heap index, -1 once popped or canceled
	// gen increments every time the record is recycled onto the free
	// list, invalidating any EventRef still pointing at it.
	gen uint64
}

// EventRef identifies a scheduled event so it can be canceled. The zero
// value is not a valid reference.
type EventRef struct {
	ev  *event
	gen uint64
}

// Valid reports whether the reference points at a still-pending event.
func (r EventRef) Valid() bool { return r.ev != nil && r.gen == r.ev.gen && r.ev.index >= 0 }

// eventQueue is a binary heap ordered by (time, sequence).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Simulator owns the virtual clock and the pending event set. It is not safe
// for concurrent use: a simulation is a single logical thread of control, and
// all model code runs inside event handlers on one goroutine. (This is a
// deliberate design choice — it is what makes runs reproducible.)
type Simulator struct {
	now     simtime.Time
	queue   eventQueue
	nextSeq uint64
	rng     *RNG
	// free is the pool of recycled event records.
	free []*event
	// pending counts scheduled, not-yet-delivered events (kept live so
	// Pending is O(1)).
	pending int
	// executed counts delivered events, for progress reporting and tests.
	executed uint64
	// tracer, if non-nil, observes every delivered event.
	tracer func(at simtime.Time)
}

// New creates a simulator with its clock at the epoch and a deterministic
// random number generator derived from seed.
func New(seed uint64) *Simulator {
	return &Simulator{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() simtime.Time { return s.now }

// RNG returns the simulator's deterministic random source.
func (s *Simulator) RNG() *RNG { return s.rng }

// Pending returns the number of scheduled, not-yet-delivered events.
func (s *Simulator) Pending() int { return s.pending }

// Executed returns the number of events delivered so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// SetTracer installs a hook called with the timestamp of every delivered
// event. Passing nil removes the hook.
func (s *Simulator) SetTracer(fn func(at simtime.Time)) { s.tracer = fn }

// alloc takes an event record from the free list, or heap-allocates the
// pool's next record.
func (s *Simulator) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle invalidates every outstanding reference to ev and returns the
// record to the free list.
func (s *Simulator) recycle(ev *event) {
	ev.fn = nil
	ev.index = -1
	ev.gen++
	s.free = append(s.free, ev)
}

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past is a model bug and panics, because silently reordering causality would
// invalidate every latency measurement downstream.
func (s *Simulator) At(at simtime.Time, fn Handler) EventRef {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("des: nil event handler")
	}
	ev := s.alloc()
	ev.at = at
	ev.seq = s.nextSeq
	ev.fn = fn
	s.nextSeq++
	heap.Push(&s.queue, ev)
	s.pending++
	return EventRef{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d simtime.Duration, fn Handler) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel withdraws a pending event. Canceling an already-fired or
// already-canceled event is a no-op so model code can cancel defensively.
func (s *Simulator) Cancel(r EventRef) {
	if !r.Valid() {
		return
	}
	heap.Remove(&s.queue, r.ev.index)
	s.pending--
	s.recycle(r.ev)
}

// Step delivers the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	s.pending--
	s.now = ev.at
	s.executed++
	at, fn := ev.at, ev.fn
	// Recycle before running the handler: the handler may immediately
	// schedule new events, reusing this record, and any stale reference
	// to the fired event is already invalid (generation bumped).
	s.recycle(ev)
	if s.tracer != nil {
		s.tracer(at)
	}
	fn()
	return true
}

// Run delivers events until the queue drains.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil delivers events with timestamps ≤ deadline, then advances the
// clock to exactly deadline. Events scheduled beyond the deadline remain
// pending; a subsequent RunUntil may deliver them.
func (s *Simulator) RunUntil(deadline simtime.Time) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor runs the simulation for a span of virtual time from now.
func (s *Simulator) RunFor(d simtime.Duration) {
	s.RunUntil(s.now.Add(d))
}

// Every schedules fn to run now+phase, then every period thereafter, until
// the returned stop function is called. It is the building block for
// periodic traffic sources and for the 1553B minor-frame interrupt.
func (s *Simulator) Every(phase, period simtime.Duration, fn Handler) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("des: non-positive period %v", period))
	}
	stopped := false
	var ref EventRef
	var tick Handler
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped { // fn may have called stop
			ref = s.After(period, tick)
		}
	}
	ref = s.After(phase, tick)
	return func() {
		stopped = true
		s.Cancel(ref)
	}
}
