// Package des implements the discrete-event simulation kernel that drives
// every simulator in this repository (the switched-Ethernet model and the
// MIL-STD-1553B baseline bus).
//
// The kernel is a classic event-list simulator: events carry a virtual
// timestamp, a monotonically increasing sequence number for deterministic
// tie-breaking, and a callback. The scheduler pops the earliest event,
// advances the virtual clock to its timestamp, and runs the callback, which
// may schedule further events. Because ties are broken by insertion order,
// a simulation with a fixed seed is fully deterministic: the same inputs
// always produce the same event trace, byte for byte.
//
// Event records are pooled: a fired or canceled event returns to a
// free list and is reused by the next At/After, so the steady-state
// scheduling path performs no heap allocation. A per-event generation
// counter keeps stale EventRefs (to fired, canceled, or recycled events)
// safely invalid.
package des

import (
	"fmt"

	"repro/internal/simtime"
)

// Handler is the callback executed when an event fires. It runs with the
// simulation clock already advanced to the event's timestamp.
type Handler func()

// event is a scheduled callback.
type event struct {
	at  simtime.Time
	seq uint64 // tie-break: FIFO among equal timestamps
	fn  Handler
	// idx is the record's permanent slot in its Pool's record table; heap
	// nodes address records by this index so the heap itself stays free
	// of pointers (the GC neither scans nor write-barriers sift moves).
	idx int32
	// canceled marks a record whose event was withdrawn while still in
	// the heap; the scheduler discards it when it surfaces (lazy
	// deletion, so the sift routines never have to track heap indices).
	canceled bool
	// gen increments whenever the record's event dies — fired, canceled,
	// or recycled — invalidating any EventRef still pointing at it.
	gen uint64
}

// EventRef identifies a scheduled event so it can be canceled. The zero
// value is not a valid reference.
type EventRef struct {
	ev  *event
	gen uint64
}

// Valid reports whether the reference points at a still-pending event.
func (r EventRef) Valid() bool { return r.ev != nil && r.gen == r.ev.gen }

// eventQueue is a 4-ary heap ordered by (time, sequence), hand-rolled
// instead of container/heap: the scheduler is the single hottest loop of
// every simulation, and the direct sift routines avoid the interface
// dispatch and swap-by-index indirection of the generic heap (the wider
// node halves the sift-down depth and keeps siblings on one cache line).
// Heap nodes carry (at, seq) by value so sift comparisons never chase the
// *event pointer — the event record is touched only on push and pop.
// Because (at, seq) is a strict total order (seq is unique), the pop
// order is exactly sorted order for any correct heap, so swapping
// implementations cannot change a simulation's event trace.
type eventQueue struct {
	ev []heapNode
}

// heapNode is one heap slot: the ordering key inline plus the record's
// pool index. The node is deliberately pointer-free.
type heapNode struct {
	at  simtime.Time
	seq uint64
	idx int32
}

// arity is the heap fan-out.
const arity = 4

func nodeLess(a, b heapNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) len() int { return len(q.ev) }

// push appends ev and sifts it up to its heap position.
func (q *eventQueue) push(ev *event) {
	i := len(q.ev)
	//rtlint:presized heap presized at construction; growth past the high-water mark is amortized
	q.ev = append(q.ev, heapNode{at: ev.at, seq: ev.seq, idx: ev.idx})
	q.up(i)
}

// pop removes and returns the pool index of the earliest event.
//
// It uses the bottom-up deletion strategy: sink the root hole to a leaf
// following the smallest child (child-only comparisons), then place the
// former last element into the hole and sift it up. The displaced last
// element is almost always near-maximal — periodic re-arms land in the
// far future — so the up-pass terminates immediately, saving the
// per-level "new element vs child" comparison of the classic sift-down.
func (q *eventQueue) pop() int32 {
	idx := q.ev[0].idx
	n := len(q.ev) - 1
	last := q.ev[n]
	q.ev = q.ev[:n]
	if n > 0 {
		// Sink the hole at the root to a leaf along min-children.
		i := 0
		for {
			first := arity*i + 1
			if first >= n {
				break
			}
			end := first + arity
			if end > n {
				end = n
			}
			best := first
			for c := first + 1; c < end; c++ {
				if nodeLess(q.ev[c], q.ev[best]) {
					best = c
				}
			}
			q.ev[i] = q.ev[best]
			i = best
		}
		// Drop the last element into the leaf hole and restore order.
		q.ev[i] = last
		q.up(i)
	}
	return idx
}

// up sifts the node at position i toward the root.
func (q *eventQueue) up(i int) {
	nd := q.ev[i]
	for i > 0 {
		parent := (i - 1) / arity
		p := q.ev[parent]
		if !nodeLess(nd, p) {
			break
		}
		q.ev[i] = p
		i = parent
	}
	q.ev[i] = nd
}

// Simulator owns the virtual clock and the pending event set. It is not safe
// for concurrent use: a simulation is a single logical thread of control, and
// all model code runs inside event handlers on one goroutine. (This is a
// deliberate design choice — it is what makes runs reproducible.)
type Simulator struct {
	now     simtime.Time
	queue   eventQueue
	nextSeq uint64
	rng     *RNG
	// pool holds the free list of recycled event records; it may be
	// shared across sequential simulator lifetimes (NewWithPool).
	pool *Pool
	// pending counts scheduled, not-yet-delivered events (kept live so
	// Pending is O(1)).
	pending int
	// canceledInHeap counts lazily-canceled records still waiting in the
	// heap, so the hot scheduling path skips the cancellation check
	// entirely while it is zero (the overwhelmingly common state).
	canceledInHeap int
	// executed counts delivered events, for progress reporting and tests.
	executed uint64
	// tracer, if non-nil, observes every delivered event.
	tracer func(at simtime.Time)
}

// Pool is a free list of event records that can outlive one Simulator:
// a sweep worker running thousands of short simulations back to back
// hands the same Pool to each, so the event records warmed up by one run
// are reused by the next instead of being re-allocated from a cold heap.
// A Pool is not safe for concurrent use — it belongs to one worker, like
// the Simulator itself.
type Pool struct {
	// recs is the permanent record table: event idx → record. Records
	// are never freed, only returned to the free list.
	recs []*event
	// free holds the pool indices of recycled records.
	free []int32
}

// get takes a free record, or allocates and registers a fresh one.
func (p *Pool) get() *event {
	if n := len(p.free); n > 0 {
		idx := p.free[n-1]
		p.free = p.free[:n-1]
		return p.recs[idx]
	}
	//rtlint:coldpath pool miss: registers a fresh record, once per high-water mark
	ev := &event{idx: int32(len(p.recs))}
	//rtlint:coldpath pool miss: the record table grows only with the pool
	p.recs = append(p.recs, ev)
	return ev
}

// New creates a simulator with its clock at the epoch and a deterministic
// random number generator derived from seed.
func New(seed uint64) *Simulator {
	return NewWithPool(seed, nil)
}

// NewWithPool creates a simulator drawing event records from the given
// shared pool (nil gets a private pool, equivalent to New).
func NewWithPool(seed uint64, pool *Pool) *Simulator {
	if pool == nil {
		pool = &Pool{}
	}
	s := &Simulator{rng: NewRNG(seed), pool: pool}
	// Presize the heap so warm-up pushes don't walk the append doubling
	// chain; 256 nodes comfortably covers the pending-event peaks of the
	// built-in scenarios (~160) in one allocation.
	s.queue.ev = make([]heapNode, 0, 256)
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() simtime.Time { return s.now }

// RNG returns the simulator's deterministic random source.
func (s *Simulator) RNG() *RNG { return s.rng }

// Pending returns the number of scheduled, not-yet-delivered events.
func (s *Simulator) Pending() int { return s.pending }

// Executed returns the number of events delivered so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// SetTracer installs a hook called with the timestamp of every delivered
// event. Passing nil removes the hook.
func (s *Simulator) SetTracer(fn func(at simtime.Time)) { s.tracer = fn }

// alloc takes an event record from the pool.
func (s *Simulator) alloc() *event { return s.pool.get() }

// recycle invalidates every outstanding reference to ev and returns the
// record to the free list.
func (s *Simulator) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	//rtlint:presized free list capacity tracks the record table; growth is amortized past the high-water mark
	s.pool.free = append(s.pool.free, ev.idx)
}

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past is a model bug and panics, because silently reordering causality would
// invalidate every latency measurement downstream.
//
//rtlint:hotpath
func (s *Simulator) At(at simtime.Time, fn Handler) EventRef {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("des: nil event handler")
	}
	ev := s.alloc()
	ev.at = at
	ev.seq = s.nextSeq
	ev.fn = fn
	s.nextSeq++
	s.queue.push(ev)
	s.pending++
	return EventRef{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
//
//rtlint:hotpath
func (s *Simulator) After(d simtime.Duration, fn Handler) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel withdraws a pending event. Canceling an already-fired or
// already-canceled event is a no-op so model code can cancel defensively.
// Cancellation is lazy: the record is marked dead and discarded when it
// reaches the top of the heap, so the sift routines never maintain heap
// indices. The record rejoins the free list only once it surfaces.
//
//rtlint:hotpath
func (s *Simulator) Cancel(r EventRef) {
	if !r.Valid() {
		return
	}
	r.ev.canceled = true
	r.ev.fn = nil
	r.ev.gen++ // invalidate outstanding references immediately
	s.pending--
	s.canceledInHeap++
}

// drainCanceled discards lazily-canceled records sitting at the heap root
// so the earliest live event (if any) is at position 0. While no cancels
// are outstanding it is a single counter check.
func (s *Simulator) drainCanceled() {
	if s.canceledInHeap == 0 {
		return
	}
	for len(s.queue.ev) > 0 && s.pool.recs[s.queue.ev[0].idx].canceled {
		ev := s.pool.recs[s.queue.pop()]
		ev.canceled = false
		s.canceledInHeap--
		s.recycle(ev)
	}
}

// Step delivers the single earliest pending event and returns true, or
// returns false if the queue is empty.
//
//rtlint:hotpath
func (s *Simulator) Step() bool {
	s.drainCanceled()
	if s.queue.len() == 0 {
		return false
	}
	ev := s.pool.recs[s.queue.pop()]
	s.pending--
	s.now = ev.at
	s.executed++
	at, fn := ev.at, ev.fn
	// Recycle before running the handler: the handler may immediately
	// schedule new events, reusing this record, and any stale reference
	// to the fired event is already invalid (generation bumped).
	s.recycle(ev)
	if s.tracer != nil {
		s.tracer(at)
	}
	fn()
	return true
}

// Run delivers events until the queue drains.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil delivers events with timestamps ≤ deadline, then advances the
// clock to exactly deadline. Events scheduled beyond the deadline remain
// pending; a subsequent RunUntil may deliver them.
func (s *Simulator) RunUntil(deadline simtime.Time) {
	for {
		s.drainCanceled()
		if s.queue.len() == 0 || s.queue.ev[0].at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor runs the simulation for a span of virtual time from now.
func (s *Simulator) RunFor(d simtime.Duration) {
	s.RunUntil(s.now.Add(d))
}

// Every schedules fn to run now+phase, then every period thereafter, until
// the returned stop function is called. It is the building block for
// periodic traffic sources and for the 1553B minor-frame interrupt.
func (s *Simulator) Every(phase, period simtime.Duration, fn Handler) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("des: non-positive period %v", period))
	}
	stopped := false
	var ref EventRef
	var tick Handler
	//rtlint:hotpath
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped { // fn may have called stop
			ref = s.After(period, tick)
		}
	}
	ref = s.After(phase, tick)
	return func() {
		stopped = true
		s.Cancel(ref)
	}
}
