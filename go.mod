module repro

go 1.24

// rtlint (internal/lint, cmd/rtlint) builds on golang.org/x/tools/go/analysis.
// The dependency is vendored under third_party/ (the go/analysis subset the
// Go toolchain itself ships in GOROOT/src/cmd/vendor), so offline builds and
// CI need no module proxy. See third_party/golang.org/x/tools/README.md.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e

replace golang.org/x/tools => ./third_party/golang.org/x/tools
