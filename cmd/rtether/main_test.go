package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

// capture runs a command function with stdout redirected to a buffer.
func capture(t *testing.T, fn func([]string) error, args ...string) string {
	t.Helper()
	var b strings.Builder
	old := stdout
	stdout = &b
	defer func() { stdout = old }()
	if err := fn(args); err != nil {
		t.Fatalf("command failed: %v", err)
	}
	return b.String()
}

func TestCmdFigure1(t *testing.T) {
	out := capture(t, cmdFigure1)
	for _, want := range []string{
		"Figure 1", "10Mbps", "140µs",
		"FCFS violations: 10 of 94",
		"priority violations: 0",
		"ew/threat-warning",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCmdFigure1CSV(t *testing.T) {
	out := capture(t, cmdFigure1, "-csv")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 95 { // header + 94 connections
		t.Errorf("%d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "connection,class,") {
		t.Errorf("CSV header %q", lines[0])
	}
}

func TestCmdAnalyze(t *testing.T) {
	out := capture(t, cmdAnalyze)
	if !strings.Contains(out, "single-hop (paper-faithful)") {
		t.Error("model line missing")
	}
	if !strings.Contains(out, "== FCFS: 10 violations ==") {
		t.Errorf("FCFS section missing:\n%s", firstLines(out, 3))
	}
	out = capture(t, cmdAnalyze, "-e2e")
	if !strings.Contains(out, "end-to-end (compositional)") {
		t.Error("e2e model line missing")
	}
}

func TestCmdSimulate(t *testing.T) {
	out := capture(t, cmdSimulate, "-horizon", "100ms", "-approach", "fcfs")
	if !strings.Contains(out, "simulated 100ms under FCFS") {
		t.Errorf("header missing:\n%s", firstLines(out, 2))
	}
	if !strings.Contains(out, "nav/attitude") {
		t.Error("per-connection rows missing")
	}
}

func TestCmdSimulatePCAP(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.pcap")
	out := capture(t, cmdSimulate, "-horizon", "50ms", "-pcap", path)
	if !strings.Contains(out, "wrote ") {
		t.Error("pcap summary missing")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 24 || data[0] != 0xd4 { // little-endian magic
		t.Errorf("pcap file malformed (%d bytes)", len(data))
	}
}

func TestCmdBaseline(t *testing.T) {
	out := capture(t, cmdBaseline)
	for _, want := range []string{"MIL-STD-1553B baseline", "utilization", "ew/threat-warning",
		"(1 replications)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCmdSweep(t *testing.T) {
	out := capture(t, cmdSweep, "-horizon", "50ms")
	for _, want := range []string{"10Mbps", "100Mbps", "1Gbps",
		"grid cross-validation", "cells with bound violations: 0 of 9"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep missing %q", want)
		}
	}
	if !strings.Contains(capture(t, cmdSweep, "-nogrid"), "link-rate ablation") {
		t.Error("-nogrid lost the ablation")
	}
}

// The acceptance contract of the sweep engine: for the same seed, the
// command's full output is byte-identical at any -parallel value.
func TestCmdSweepParallelDeterministic(t *testing.T) {
	args := []string{"-horizon", "50ms", "-reps", "3", "-seed", "42"}
	serial := capture(t, cmdSweep, append([]string{"-parallel", "1"}, args...)...)
	par := capture(t, cmdSweep, append([]string{"-parallel", "8"}, args...)...)
	if serial != par {
		t.Errorf("sweep output differs between -parallel=1 and -parallel=8:\n%s\nvs\n%s", serial, par)
	}
}

func TestCmdValidateReplicated(t *testing.T) {
	args := []string{"-horizon", "50ms", "-reps", "2", "-seed", "3"}
	serial := capture(t, cmdValidate, append([]string{"-parallel", "1"}, args...)...)
	for _, want := range []string{"== FCFS (2 replications, randomized sources): all sound = true, backlog sound = true ==",
		"== priority (2 replications, randomized sources): all sound = true, backlog sound = true ==",
		"observed p99", "observed max backlog", "queues checked, 0 over bound"} {
		if !strings.Contains(serial, want) {
			t.Errorf("validate missing %q", want)
		}
	}
	if par := capture(t, cmdValidate, append([]string{"-parallel", "4"}, args...)...); par != serial {
		t.Error("validate output differs across -parallel values")
	}
}

func TestCmdCapacity(t *testing.T) {
	out := capture(t, cmdCapacity)
	if !strings.Contains(out, "FCFS") || !strings.Contains(out, "priority") {
		t.Error("capacity rows missing")
	}
	if !strings.Contains(out, "needs more") || !strings.Contains(out, "fits") {
		t.Errorf("verdicts missing:\n%s", out)
	}
}

func TestCmdBacklog(t *testing.T) {
	out := capture(t, cmdBacklog)
	if !strings.Contains(out, "mission-computer") {
		t.Error("bottleneck port missing")
	}
	// The paper's star groups everything under the single switch.
	for _, want := range []string{"sw0", "sw0 buffer total:"} {
		if !strings.Contains(out, want) {
			t.Errorf("backlog output missing %q", want)
		}
	}
}

// TestCmdBacklogGroupedPerSwitch: on a multi-switch scenario the buffer
// dimensioning table groups output ports under their home switch — every
// directed edge priced: destination ports, BOTH trunk directions, and
// the station uplink queues in their own section, with complete
// per-switch totals (the two ROADMAP deferrals this closes).
func TestCmdBacklogGroupedPerSwitch(t *testing.T) {
	out := capture(t, cmdBacklog, "-config", heteroFixture)
	for _, want := range []string{"architecture dual-split: 2 switch(es), 2 plane(s)",
		"sw0", "sw1", "sw0 buffer total:", "sw1 buffer total:", "trunk ports included",
		"sw0->sw1", "sw1->sw0", // both trunk directions priced
		"station uplink dimensioning", "mc->sw0",
		"all 2 planes price identically"} {
		if !strings.Contains(out, want) {
			t.Errorf("grouped backlog missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "not yet bounded") {
		t.Errorf("stale trunk caveat survived the per-edge rewire:\n%s", out)
	}
	// Every directed edge of the two-switch dual appears: 2 trunk
	// directions + 4 destination ports + 4 uplinks.
	for _, edge := range []string{"sw0->sw1", "sw1->sw0", "ew->sw1", "nav->sw0", "radar->sw1"} {
		if !strings.Contains(out, edge) {
			t.Errorf("edge %s missing:\n%s", edge, out)
		}
	}
	// Ports sort under their switch: mc and nav live on sw0, ew on sw1.
	ew, nav := strings.Index(out, "sw1     ew"), strings.Index(out, "sw0     nav")
	if ew < 0 || nav < 0 {
		t.Fatalf("expected per-switch rows missing (ew@%d nav@%d):\n%s", ew, nav, out)
	}
	if ew < nav {
		t.Errorf("ports not grouped by switch:\n%s", out)
	}
}

// goldenBacklogPath pins the `rtether backlog` table on the committed
// hetero dual fixture byte-for-byte. The fixture was captured BEFORE the
// per-edge rewire, so the rewire's diff shows exactly what changed (the
// trunk rows appearing) and proves the destination-port rows moved not a
// byte. Regenerate with REGEN_GOLDEN=1 go test ./cmd/rtether -run
// TestCmdBacklogGolden — only legitimate when the table intentionally
// changes.
const goldenBacklogPath = "testdata/golden_backlog_dual_hetero.txt"

func TestCmdBacklogGolden(t *testing.T) {
	got := capture(t, cmdBacklog, "-config", heteroFixture)
	if os.Getenv("REGEN_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenBacklogPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenBacklogPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenBacklogPath)
		return
	}
	want, err := os.ReadFile(goldenBacklogPath)
	if err != nil {
		t.Fatalf("fixture missing (run with REGEN_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("backlog table drifted from the fixture:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestCmdBacklogDimension: -dimension emits the scenario JSON with the
// derived per-port capacities in the sim section; the document loads
// back, simulates with zero drops, and pipes into validate — the CI
// smoke step `backlog -dimension | validate -config -` in miniature.
func TestCmdBacklogDimension(t *testing.T) {
	out := capture(t, cmdBacklog, "-config", heteroFixture, "-dimension")
	cfg, err := topology.Load(strings.NewReader(out))
	if err != nil {
		t.Fatalf("emitted scenario does not load: %v\n%s", err, out)
	}
	caps := cfg.Sim.QueueCapacitiesBytes
	// 4 uplinks + 2 trunk directions + 3 flow-carrying dest ports; the
	// idle sw1->radar edge is omitted (0 would mean explicitly unbounded).
	if len(caps) != 9 {
		t.Fatalf("%d capacities emitted, want 9: %v", len(caps), caps)
	}
	if _, ok := caps["sw1->radar"]; ok {
		t.Error("idle edge sw1->radar received a capacity (0 = unbounded, not a budget)")
	}
	// The destination-port capacity is the (deprecated) PortBacklogs
	// number the fixture's golden table prints.
	if caps["sw0->mc"] != 290 {
		t.Errorf("sw0->mc capacity = %d B, want 290 B", caps["sw0->mc"])
	}
	s, err := core.NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Errorf("%d drops with analytically dimensioned queues", res.Dropped)
	}
	// The shell round trip: backlog -dimension | validate -config -.
	old := stdin
	stdin = strings.NewReader(out)
	defer func() { stdin = old }()
	vout := capture(t, cmdValidate, "-config", "-", "-horizon", "30ms")
	if !strings.Contains(vout, "all sound = true, backlog sound = true") {
		t.Errorf("dimensioned scenario validation not sound:\n%s", firstLines(vout, 3))
	}
}

func TestCmdAFDX(t *testing.T) {
	out := capture(t, cmdAFDX)
	for _, want := range []string{"94 virtual links", "jitter budget exceeded", "BAG"} {
		if !strings.Contains(out, want) {
			t.Errorf("afdx output missing %q", want)
		}
	}
}

func TestCmdTwoSwitch(t *testing.T) {
	out := capture(t, cmdTwoSwitch)
	for _, want := range []string{"two-switch", "crosses trunk", "ew/threat-warning"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCmdTopo(t *testing.T) {
	out := capture(t, cmdTopo, "-horizon", "50ms", "-ber", "1e-5")
	for _, want := range []string{"unified network engine", "star", "cascade", "tree", "chain", "dual",
		"dualskew", "worst e2e bound", "redundant", "discarded",
		"degraded dual (any one plane failed)", "degraded dualskew (any one plane failed)"} {
		if !strings.Contains(out, want) {
			t.Errorf("topo output missing %q", want)
		}
	}
	// Every row must be sound.
	if strings.Contains(out, "NO") {
		t.Errorf("topo reports a bound violation:\n%s", out)
	}
	// Family selection narrows the table.
	narrow := capture(t, cmdTopo, "-horizon", "50ms", "-topologies", "star,chain")
	if strings.Contains(narrow, "cascade") {
		t.Error("-topologies did not narrow the families")
	}
	// Unknown family errors.
	if err := cmdTopo([]string{"-topologies", "hypercube"}); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestCmdTopoGridParallelDeterministic(t *testing.T) {
	args := []string{"-grid", "-horizon", "30ms", "-reps", "2", "-seed", "9",
		"-topologies", "star,dual"}
	serial := capture(t, cmdTopo, append([]string{"-parallel", "1"}, args...)...)
	par := capture(t, cmdTopo, append([]string{"-parallel", "8"}, args...)...)
	if serial != par {
		t.Errorf("topo -grid output differs between -parallel=1 and -parallel=8:\n%s\nvs\n%s", serial, par)
	}
	if !strings.Contains(serial, "cross-validation (M3)") {
		t.Error("grid header missing")
	}
	if !strings.Contains(serial, "cells with bound violations: 0 of") {
		t.Errorf("grid verdict missing:\n%s", serial)
	}
}

func TestCmdSimulateTraceCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	out := capture(t, cmdSimulate, "-horizon", "50ms", "-trace", path)
	if !strings.Contains(out, "lifecycle events") {
		t.Error("trace summary missing")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time_ns,kind,") {
		t.Error("trace CSV header missing")
	}
}

func TestCmdSchedulers(t *testing.T) {
	out := capture(t, cmdSchedulers)
	for _, want := range []string{"FCFS", "strict priority", "preemptive", "deficit round robin"} {
		if !strings.Contains(out, want) {
			t.Errorf("schedulers output missing %q", want)
		}
	}
}

func TestCmdScenario(t *testing.T) {
	out := capture(t, cmdScenario)
	if !strings.Contains(out, `"link_rate_bps": 10000000`) {
		t.Error("scenario JSON missing link rate")
	}
	// The emitted scenario must load back.
	if _, err := topology.Load(strings.NewReader(out)); err != nil {
		t.Errorf("emitted scenario does not load: %v", err)
	}
}

func TestCommandsWithCustomConfig(t *testing.T) {
	// Round-trip through a file to exercise the -config path.
	path := filepath.Join(t.TempDir(), "scenario.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.Default().Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := capture(t, cmdFigure1, "-config", path)
	if !strings.Contains(out, "real-case") {
		t.Error("config not honoured")
	}
	// Missing file errors.
	if err := cmdFigure1([]string{"-config", path + ".missing"}); err == nil {
		t.Error("missing config accepted")
	}
}

// heteroFixture is the committed dual-redundant heterogeneous-rate
// scenario pinned by the topology package's golden round-trip test.
const heteroFixture = "../../internal/topology/testdata/dual_hetero.json"

func TestCmdScenarioTopologyTemplate(t *testing.T) {
	out := capture(t, cmdScenario, "-topology", "dual")
	for _, want := range []string{`"network"`, `"planes": 2`, `"stations"`, "real-case-dual"} {
		if !strings.Contains(out, want) {
			t.Errorf("template missing %q", want)
		}
	}
	// The emitted template must load back.
	if _, err := topology.Load(strings.NewReader(out)); err != nil {
		t.Errorf("emitted template does not load: %v", err)
	}
	// Unknown family errors.
	if err := cmdScenario([]string{"-topology", "hypercube"}); err == nil {
		t.Error("unknown family accepted")
	}
}

// TestCmdConfigStdin proves the shell round trip the CI smoke step relies
// on: rtether scenario | rtether validate -config -.
func TestCmdConfigStdin(t *testing.T) {
	template := capture(t, cmdScenario, "-topology", "dual")
	old := stdin
	stdin = strings.NewReader(template)
	defer func() { stdin = old }()
	out := capture(t, cmdValidate, "-config", "-", "-horizon", "30ms")
	if !strings.Contains(out, "all sound = true") {
		t.Errorf("piped scenario validation not sound:\n%s", firstLines(out, 3))
	}
}

func TestCmdSimulateCustomNetwork(t *testing.T) {
	out := capture(t, cmdSimulate, "-config", heteroFixture)
	// The sim section fixes the horizon (100ms) and the network section
	// the architecture (2 switches, 2 planes).
	if !strings.Contains(out, "simulated 100ms under priority on dual-split (2 switches, 2 planes;") {
		t.Errorf("scenario sections not honoured:\n%s", firstLines(out, 2))
	}
	// Explicit flags override the sim section.
	out = capture(t, cmdSimulate, "-config", heteroFixture, "-horizon", "40ms", "-approach", "fcfs")
	if !strings.Contains(out, "simulated 40ms under FCFS on dual-split") {
		t.Errorf("flags did not override sim section:\n%s", firstLines(out, 2))
	}
}

// TestCmdValidateCustomNetworkDeterministic is the acceptance criterion:
// a custom heterogeneous-rate dual-redundant scenario runs through
// validate with same-seed output bit-identical at any -parallel value,
// and every connection sound.
func TestCmdValidateCustomNetworkDeterministic(t *testing.T) {
	args := []string{"-config", heteroFixture, "-horizon", "50ms", "-reps", "3", "-seed", "42"}
	serial := capture(t, cmdValidate, append([]string{"-parallel", "1"}, args...)...)
	par := capture(t, cmdValidate, append([]string{"-parallel", "8"}, args...)...)
	if serial != par {
		t.Errorf("custom-network validate differs across -parallel values:\n%s\nvs\n%s", serial, par)
	}
	if strings.Count(serial, "all sound = true") != 2 {
		t.Errorf("custom-network validation not sound:\n%s", firstLines(serial, 3))
	}
}

func TestCmdTopoWithScenarioNetwork(t *testing.T) {
	out := capture(t, cmdTopo, "-config", heteroFixture, "-horizon", "30ms")
	if !strings.Contains(out, "scenario:dual-split") {
		t.Errorf("custom network row missing:\n%s", firstLines(out, 5))
	}
	if strings.Contains(out, "NO") {
		t.Errorf("custom network row unsound:\n%s", out)
	}
}

// TestCmdTopoHonoursSimSection: without explicit flags, the scenario's
// sim section (horizon 100ms, priority) drives the topo run; explicit
// flags still override.
func TestCmdTopoHonoursSimSection(t *testing.T) {
	out := capture(t, cmdTopo, "-config", heteroFixture, "-topologies", "star")
	if !strings.Contains(out, "(horizon 100ms, BER 0)") {
		t.Errorf("sim-section horizon not honoured:\n%s", firstLines(out, 1))
	}
	out = capture(t, cmdTopo, "-config", heteroFixture, "-topologies", "star", "-horizon", "20ms")
	if !strings.Contains(out, "(horizon 20ms, BER 0)") {
		t.Errorf("explicit -horizon did not override:\n%s", firstLines(out, 1))
	}
}

// TestCmdValidatePinnedSourceRegime: a scenario explicitly pinning
// align_phases keeps the critical instant even under -reps > 1.
func TestCmdValidatePinnedSourceRegime(t *testing.T) {
	out := capture(t, cmdValidate, "-config", heteroFixture, "-reps", "2", "-horizon", "30ms")
	if !strings.Contains(out, "critical-instant sources") {
		t.Errorf("pinned source regime clobbered by -reps:\n%s", firstLines(out, 1))
	}
	// The built-in scenario pins nothing: -reps > 1 randomizes as before.
	out = capture(t, cmdValidate, "-reps", "2", "-horizon", "30ms")
	if !strings.Contains(out, "randomized sources") {
		t.Errorf("unpinned scenario did not randomize:\n%s", firstLines(out, 1))
	}
}

// skewedDualFixture is the annotated redundancy-management scenario of
// EXPERIMENTS.md: an asymmetric dual (plane B at half rate, releasing
// 150µs late over 3µs-longer cables) under an 800µs integrity window.
const skewedDualFixture = "../../examples/topologies/skewed_dual.json"

// TestCmdValidateSkewedDual is the acceptance criterion's validation row:
// on the skewed dual, across replicated seeds, every observed first-copy
// latency stays within the skew-aware bound under both disciplines, and
// the output is bit-identical at any -parallel value.
func TestCmdValidateSkewedDual(t *testing.T) {
	args := []string{"-config", skewedDualFixture, "-reps", "3", "-seed", "42"}
	serial := capture(t, cmdValidate, append([]string{"-parallel", "1"}, args...)...)
	if got := strings.Count(serial, "all sound = true"); got != 2 {
		t.Errorf("skewed dual not sound under both approaches (%d of 2):\n%s", got, serial)
	}
	if par := capture(t, cmdValidate, append([]string{"-parallel", "8"}, args...)...); par != serial {
		t.Error("skewed-dual validate differs across -parallel values")
	}
}

// TestCmdTopoSkewedScenario: a skewed-dual scenario file leads the topo
// table with the skew-aware bound and surfaces integrity-window discards.
func TestCmdTopoSkewedScenario(t *testing.T) {
	out := capture(t, cmdTopo, "-config", skewedDualFixture, "-topologies", "star")
	if !strings.Contains(out, "scenario:skewed-dual-star") {
		t.Errorf("scenario row missing:\n%s", firstLines(out, 5))
	}
	if !strings.Contains(out, "degraded scenario:skewed-dual-star (any one plane failed)") {
		t.Errorf("degraded bound line missing:\n%s", out)
	}
	if strings.Contains(out, "NO") {
		t.Errorf("skewed scenario unsound:\n%s", out)
	}
}

// TestCmdTopoUnstablePlane: a plane negotiated down so far it is
// over-subscribed has an infinite bound. The all-up row still prints
// (the stable plane wins the first-copy minimum) and the degraded line
// reports the unbounded verdict instead of aborting the command.
func TestCmdTopoUnstablePlane(t *testing.T) {
	doc, err := os.ReadFile(skewedDualFixture)
	if err != nil {
		t.Fatal(err)
	}
	slow := strings.Replace(string(doc), `"rate_scale": 0.5,`, `"rate_scale": 0.0004,`, 1)
	if slow == string(doc) {
		t.Fatal("fixture anchor not found")
	}
	path := filepath.Join(t.TempDir(), "slow-plane.json")
	if err := os.WriteFile(path, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, cmdTopo, "-config", path, "-topologies", "star")
	if !strings.Contains(out, "scenario:skewed-dual-star") {
		t.Errorf("all-up row missing:\n%s", firstLines(out, 5))
	}
	if !strings.Contains(out, "unbounded — a failure leaves only over-subscribed planes") {
		t.Errorf("unbounded degraded verdict missing:\n%s", out)
	}
}

// TestCmdTopoLastSurvivingPlane: a dual already running on its last
// surviving plane has no one-more-failure mode — topo must print its
// table (without a degraded line) instead of aborting.
func TestCmdTopoLastSurvivingPlane(t *testing.T) {
	doc, err := os.ReadFile(skewedDualFixture)
	if err != nil {
		t.Fatal(err)
	}
	failed := strings.Replace(string(doc), `"rate_scale": 0.5,`, `"fail": true, "rate_scale": 0.5,`, 1)
	if failed == string(doc) {
		t.Fatal("fixture anchor not found")
	}
	path := filepath.Join(t.TempDir(), "one-plane.json")
	if err := os.WriteFile(path, []byte(failed), 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, cmdTopo, "-config", path, "-topologies", "star")
	if !strings.Contains(out, "scenario:skewed-dual-star") {
		t.Errorf("table missing:\n%s", firstLines(out, 5))
	}
	if strings.Contains(out, "degraded scenario:") {
		t.Errorf("degraded line printed with a single surviving plane:\n%s", out)
	}
}

func TestCmdBaselineWithScenario(t *testing.T) {
	out := capture(t, cmdBaseline, "-config", heteroFixture)
	if !strings.Contains(out, "BC=mc") {
		t.Errorf("scenario bus controller not honoured:\n%s", firstLines(out, 2))
	}
}

func TestCmdAnalyzeTreeComposed(t *testing.T) {
	out := capture(t, cmdAnalyze, "-config", heteroFixture, "-e2e")
	if !strings.Contains(out, `tree-composed over "dual-split": 2 switches, 2 planes`) {
		t.Errorf("tree-composed model line missing:\n%s", firstLines(out, 2))
	}
}

func TestParseApproach(t *testing.T) {
	if _, err := parseApproach("fcfs"); err != nil {
		t.Error(err)
	}
	if _, err := parseApproach("PRIORITY"); err != nil {
		t.Error(err)
	}
	if _, err := parseApproach("weird"); err == nil {
		t.Error("bad approach accepted")
	}
}

func TestHelpers(t *testing.T) {
	if mark(true) != "yes" || mark(false) != "NO" {
		t.Error("mark broken")
	}
	if got := firstN([]string{"a", "b", "c"}, 2); len(got) != 3 || got[2] != "…" {
		t.Errorf("firstN = %v", got)
	}
	if got := firstN([]string{"a"}, 2); len(got) != 1 {
		t.Errorf("firstN = %v", got)
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
