package main

import (
	"fmt"
	"os"

	"repro/internal/afdx"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// cmdCapacity answers the inverse of the paper's observation: what is the
// smallest link rate at which each approach meets every deadline?
func cmdCapacity(args []string) error {
	fs := newFlagSet("capacity")
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	scen, err := loadScenario(*config)
	if err != nil {
		return err
	}
	set, err := scen.ToSet()
	if err != nil {
		return err
	}
	cfg := scen.AnalysisConfig()
	tbl := report.NewTable("approach", "minimal link rate", "vs paper's 10Mbps")
	for _, approach := range []analysis.Approach{analysis.FCFS, analysis.Priority} {
		rate, err := analysis.MinimalRate(set, approach, cfg, simtime.Mbps, simtime.Gbps, 100*simtime.Kbps)
		if err != nil {
			return err
		}
		verdict := "fits"
		if rate > 10*simtime.Mbps {
			verdict = "needs more"
		}
		tbl.AddRow(approach, rate, verdict)
	}
	fmt.Fprintln(stdout, "capacity planning (A5): minimal rate meeting all deadlines")
	_, err = tbl.WriteTo(stdout)
	return err
}

// cmdBacklog prints the complete per-switch memory budget of the
// scenario's architecture: every directed edge owns one queue — station
// uplink multiplexers, trunk output ports in both directions, destination
// output ports — and every one gets a backlog bound (core.EdgeBacklogs).
// Rows group under the switch owning the queue, destination ports keep
// their historical pricing (byte-identical to the deprecated
// analysis.PortBacklogs), and the per-switch totals now cover trunk ports
// too, so they are the switch's whole memory. Station uplink queues live
// in the stations and get their own section. With -dimension the command
// instead emits the scenario JSON with the derived per-port capacities in
// the sim section (queue_capacities_bytes), ready to pipe into any other
// subcommand: rtether backlog -dimension | rtether validate -config -.
func cmdBacklog(args []string) error {
	fs := newFlagSet("backlog")
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	dimension := fs.Bool("dimension", false, "emit the scenario JSON with derived per-port queue capacities instead of the table")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	s, err := bindScenario(*config)
	if err != nil {
		return err
	}
	// One shared encoder with the scenario service (POST /v1/backlog).
	return render.Backlog(stdout, s, *dimension)
}

// cmdAFDX maps the workload onto ARINC 664 virtual links and compares the
// civil 2-priority profile with the paper's military 4-class one.
func cmdAFDX(args []string) error {
	fs := newFlagSet("afdx")
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	scen, err := loadScenario(*config)
	if err != nil {
		return err
	}
	set, err := scen.ToSet()
	if err != nil {
		return err
	}
	cfg := scen.AnalysisConfig()
	vls, err := afdx.FromMessages(set)
	if err != nil {
		return err
	}
	cmp, err := afdx.CompareBounds(set, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "AFDX mapping: %d virtual links at %v\n", len(vls), cfg.LinkRate)
	if offenders := afdx.CheckJitterBudgets(vls, cfg.LinkRate); len(offenders) > 0 {
		fmt.Fprintf(stdout, "ARINC 664 500µs ES-jitter budget exceeded by: %v (AFDX runs at 100 Mbps for a reason)\n", offenders)
	}
	fmt.Fprintln(stdout)
	tbl := report.NewTable("connection", "BAG", "Lmax", "VL prio", "civil 2-class bound", "military 4-class bound")
	for i, vl := range vls {
		tbl.AddRow(vl.Msg.Name, vl.BAG, fmt.Sprintf("%dB", vl.Lmax), vl.Priority,
			cmp[i].Civil, cmp[i].Military)
	}
	_, err = tbl.WriteTo(stdout)
	return err
}

// openPCAP creates the capture file for cmdSimulate's -pcap flag.
func openPCAP(path string) (*os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("pcap: %w", err)
	}
	return f, nil
}

// writeTraceCSV dumps a recorder to a CSV file.
func writeTraceCSV(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return rec.WriteCSV(f)
}

// cmdSchedulers prints the four-discipline comparison of the urgent class
// at the bottleneck (experiments A7/A8).
func cmdSchedulers(args []string) error {
	fs := newFlagSet("schedulers")
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	scen, err := loadScenario(*config)
	if err != nil {
		return err
	}
	set, err := scen.ToSet()
	if err != nil {
		return err
	}
	cmp, err := analysis.CompareSchedulers(set, scen.AnalysisConfig(), analysis.EqualDRRQuanta())
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "urgent-class bound at the bottleneck, per multiplexer discipline:")
	tbl := report.NewTable("discipline", "P0 bound", "meets 3ms")
	deadline := 3 * simtime.Millisecond
	tbl.AddRow("FCFS (paper approach 1)", cmp.FCFS, mark(cmp.FCFS <= deadline))
	tbl.AddRow("strict priority (paper approach 2)", cmp.StrictPriority, mark(cmp.StrictPriority <= deadline))
	tbl.AddRow("preemptive priority (TSN express, ideal)", cmp.PreemptivePriority, mark(cmp.PreemptivePriority <= deadline))
	if cmp.DRRStable {
		tbl.AddRow("deficit round robin (equal quanta)", cmp.DeficitRoundRobin, mark(cmp.DeficitRoundRobin <= deadline))
	} else {
		tbl.AddRow("deficit round robin (equal quanta)", "unstable (class share too small)", "NO")
	}
	_, err = tbl.WriteTo(stdout)
	return err
}

// cmdTwoSwitch analyzes and simulates the cascaded two-switch topology.
func cmdTwoSwitch(args []string) error {
	fs := newFlagSet("twoswitch")
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	scen, err := loadScenario(*config)
	if err != nil {
		return err
	}
	set, err := scen.ToSet()
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "cascaded two-switch architecture (front/back fuselage split)")
	for _, approach := range []analysis.Approach{analysis.FCFS, analysis.Priority} {
		bounds, err := analysis.TwoSwitchEndToEnd(set, approach, scen.AnalysisConfig(), analysis.SplitByName)
		if err != nil {
			return err
		}
		cfg := core.DefaultSimConfig(approach)
		cfg.LinkRate = scen.AnalysisConfig().LinkRate
		cfg.TTechno = scen.AnalysisConfig().TTechno
		sim, err := core.SimulateTwoSwitch(set, cfg, analysis.SplitByName)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\n== %v: %d violations; worst P0 bound %v, observed %v ==\n",
			approach, bounds.Violations,
			bounds.ClassWorst[0], sim.ClassWorst[0])
		tbl := report.NewTable("connection", "class", "crosses trunk", "bound", "observed max", "ok")
		for _, pb := range bounds.Flows {
			crosses := analysis.SplitByName(pb.Spec.Msg.Source) != analysis.SplitByName(pb.Spec.Msg.Dest)
			if pb.Spec.Msg.Priority != 0 && !crosses {
				continue // keep the table focused: urgent + trunk crossers
			}
			tbl.AddRow(pb.Spec.Msg.Name, pb.Spec.Msg.Priority, crosses,
				pb.EndToEnd, sim.Flows[pb.Spec.Msg.Name].Latency.Max(), mark(pb.Met))
		}
		if _, err := tbl.WriteTo(stdout); err != nil {
			return err
		}
	}
	return nil
}
