package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/afdx"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// cmdCapacity answers the inverse of the paper's observation: what is the
// smallest link rate at which each approach meets every deadline?
func cmdCapacity(args []string) error {
	fs := flag.NewFlagSet("capacity", flag.ExitOnError)
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	fs.Parse(args)

	scen, err := loadScenario(*config)
	if err != nil {
		return err
	}
	set, err := scen.ToSet()
	if err != nil {
		return err
	}
	cfg := scen.AnalysisConfig()
	tbl := report.NewTable("approach", "minimal link rate", "vs paper's 10Mbps")
	for _, approach := range []analysis.Approach{analysis.FCFS, analysis.Priority} {
		rate, err := analysis.MinimalRate(set, approach, cfg, simtime.Mbps, simtime.Gbps, 100*simtime.Kbps)
		if err != nil {
			return err
		}
		verdict := "fits"
		if rate > 10*simtime.Mbps {
			verdict = "needs more"
		}
		tbl.AddRow(approach, rate, verdict)
	}
	fmt.Fprintln(stdout, "capacity planning (A5): minimal rate meeting all deadlines")
	_, err = tbl.WriteTo(stdout)
	return err
}

// cmdBacklog prints the switch buffer dimensioning table, grouped per
// switch of the scenario's architecture: each destination port's backlog
// bound appears under its home switch, with a per-switch total over those
// ports. The bounds are analysis.PortBacklogs — destination station ports
// at the scenario's default link rate; trunk output ports are not yet
// modeled (a ROADMAP item), so on multi-switch architectures the command
// says so instead of passing the total off as the whole switch's memory.
// On the default star every port lives on the single switch and the trunk
// caveat is moot, matching the historical flat table.
func cmdBacklog(args []string) error {
	fs := flag.NewFlagSet("backlog", flag.ExitOnError)
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	fs.Parse(args)

	s, err := bindScenario(*config)
	if err != nil {
		return err
	}
	set := s.Set
	backlogs, err := analysis.PortBacklogs(set, s.Analysis())
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "switch buffer dimensioning (prevents the overflow loss the paper warns about)")
	fmt.Fprintf(stdout, "architecture %s: %d switch(es), %d plane(s)\n",
		s.Net.Name, s.Net.Switches, s.Net.PlaneCount())
	tbl := report.NewTable("switch", "output port", "backlog bound", "connections")
	totals := make([]simtime.Size, s.Net.Switches)
	ports := make([]int, s.Net.Switches)
	for sw := 0; sw < s.Net.Switches; sw++ {
		for _, st := range set.Stations() {
			if s.Net.StationSwitch[st] != sw {
				continue
			}
			b, ok := backlogs[st]
			if !ok {
				continue
			}
			tbl.AddRow(fmt.Sprintf("sw%d", sw), st, fmt.Sprintf("%d B", b.ByteCount()), len(set.ByDest(st)))
			totals[sw] += b
			ports[sw]++
		}
	}
	if _, err := tbl.WriteTo(stdout); err != nil {
		return err
	}
	for sw, total := range totals {
		if ports[sw] == 0 {
			continue
		}
		fmt.Fprintf(stdout, "sw%d buffer total: %d B over %d station port(s)\n", sw, total.ByteCount(), ports[sw])
	}
	if s.Net.Switches > 1 {
		fmt.Fprintln(stdout, "note: totals cover destination station ports only — trunk-port backlogs are not yet bounded")
	}
	return nil
}

// cmdAFDX maps the workload onto ARINC 664 virtual links and compares the
// civil 2-priority profile with the paper's military 4-class one.
func cmdAFDX(args []string) error {
	fs := flag.NewFlagSet("afdx", flag.ExitOnError)
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	fs.Parse(args)

	scen, err := loadScenario(*config)
	if err != nil {
		return err
	}
	set, err := scen.ToSet()
	if err != nil {
		return err
	}
	cfg := scen.AnalysisConfig()
	vls, err := afdx.FromMessages(set)
	if err != nil {
		return err
	}
	cmp, err := afdx.CompareBounds(set, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "AFDX mapping: %d virtual links at %v\n", len(vls), cfg.LinkRate)
	if offenders := afdx.CheckJitterBudgets(vls, cfg.LinkRate); len(offenders) > 0 {
		fmt.Fprintf(stdout, "ARINC 664 500µs ES-jitter budget exceeded by: %v (AFDX runs at 100 Mbps for a reason)\n", offenders)
	}
	fmt.Fprintln(stdout)
	tbl := report.NewTable("connection", "BAG", "Lmax", "VL prio", "civil 2-class bound", "military 4-class bound")
	for i, vl := range vls {
		tbl.AddRow(vl.Msg.Name, vl.BAG, fmt.Sprintf("%dB", vl.Lmax), vl.Priority,
			cmp[i].Civil, cmp[i].Military)
	}
	_, err = tbl.WriteTo(stdout)
	return err
}

// openPCAP creates the capture file for cmdSimulate's -pcap flag.
func openPCAP(path string) (*os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("pcap: %w", err)
	}
	return f, nil
}

// writeTraceCSV dumps a recorder to a CSV file.
func writeTraceCSV(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return rec.WriteCSV(f)
}

// cmdSchedulers prints the four-discipline comparison of the urgent class
// at the bottleneck (experiments A7/A8).
func cmdSchedulers(args []string) error {
	fs := flag.NewFlagSet("schedulers", flag.ExitOnError)
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	fs.Parse(args)

	scen, err := loadScenario(*config)
	if err != nil {
		return err
	}
	set, err := scen.ToSet()
	if err != nil {
		return err
	}
	cmp, err := analysis.CompareSchedulers(set, scen.AnalysisConfig(), analysis.EqualDRRQuanta())
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "urgent-class bound at the bottleneck, per multiplexer discipline:")
	tbl := report.NewTable("discipline", "P0 bound", "meets 3ms")
	deadline := 3 * simtime.Millisecond
	tbl.AddRow("FCFS (paper approach 1)", cmp.FCFS, mark(cmp.FCFS <= deadline))
	tbl.AddRow("strict priority (paper approach 2)", cmp.StrictPriority, mark(cmp.StrictPriority <= deadline))
	tbl.AddRow("preemptive priority (TSN express, ideal)", cmp.PreemptivePriority, mark(cmp.PreemptivePriority <= deadline))
	if cmp.DRRStable {
		tbl.AddRow("deficit round robin (equal quanta)", cmp.DeficitRoundRobin, mark(cmp.DeficitRoundRobin <= deadline))
	} else {
		tbl.AddRow("deficit round robin (equal quanta)", "unstable (class share too small)", "NO")
	}
	_, err = tbl.WriteTo(stdout)
	return err
}

// cmdTwoSwitch analyzes and simulates the cascaded two-switch topology.
func cmdTwoSwitch(args []string) error {
	fs := flag.NewFlagSet("twoswitch", flag.ExitOnError)
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	fs.Parse(args)

	scen, err := loadScenario(*config)
	if err != nil {
		return err
	}
	set, err := scen.ToSet()
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "cascaded two-switch architecture (front/back fuselage split)")
	for _, approach := range []analysis.Approach{analysis.FCFS, analysis.Priority} {
		bounds, err := analysis.TwoSwitchEndToEnd(set, approach, scen.AnalysisConfig(), analysis.SplitByName)
		if err != nil {
			return err
		}
		cfg := core.DefaultSimConfig(approach)
		cfg.LinkRate = scen.AnalysisConfig().LinkRate
		cfg.TTechno = scen.AnalysisConfig().TTechno
		sim, err := core.SimulateTwoSwitch(set, cfg, analysis.SplitByName)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\n== %v: %d violations; worst P0 bound %v, observed %v ==\n",
			approach, bounds.Violations,
			bounds.ClassWorst[0], sim.ClassWorst[0])
		tbl := report.NewTable("connection", "class", "crosses trunk", "bound", "observed max", "ok")
		for _, pb := range bounds.Flows {
			crosses := analysis.SplitByName(pb.Spec.Msg.Source) != analysis.SplitByName(pb.Spec.Msg.Dest)
			if pb.Spec.Msg.Priority != 0 && !crosses {
				continue // keep the table focused: urgent + trunk crossers
			}
			tbl.AddRow(pb.Spec.Msg.Name, pb.Spec.Msg.Priority, crosses,
				pb.EndToEnd, sim.Flows[pb.Spec.Msg.Name].Latency.Max(), mark(pb.Met))
		}
		if _, err := tbl.WriteTo(stdout); err != nil {
			return err
		}
	}
	return nil
}
