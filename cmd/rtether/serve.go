package main

import (
	"fmt"
	"net"
	"net/http"

	"repro/internal/serve"
)

// cmdServe runs the scenario-analysis service (internal/serve) until
// the process is killed: the same engine as the CLI behind POST
// /v1/{analyze,backlog,validate,sweep}, with a content-addressed result
// cache and weighted-fair admission in front of the compute. The
// listening line goes to stderr once the socket is bound, so scripts
// can wait for readiness; stdout stays clean.
func cmdServe(args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "127.0.0.1:8373", "listen address")
	cacheEntries := fs.Int("cache-entries", 256, "result cache entry bound (0 disables storage; request coalescing stays)")
	maxInflight := fs.Int("max-inflight", 0, "concurrent computes (0 = all CPUs)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "serve: unexpected argument %q\n", fs.Arg(0))
		return usageErr{fmt.Errorf("unexpected argument %q", fs.Arg(0))}
	}
	srv := serve.New(serve.Config{CacheEntries: *cacheEntries, MaxInflight: *maxInflight})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "rtether serve: listening on http://%s\n", ln.Addr())
	return (&http.Server{Handler: srv}).Serve(ln)
}
