// Command rtether drives the reproduction of "Real-Time Communication over
// Switched Ethernet for Military Applications" (Mifdaoui, Frances, Fraboul;
// CoNEXT 2005) from the command line.
//
// Usage:
//
//	rtether <command> [flags]
//
// `rtether help` lists every command; the dispatch table and the usage
// text are generated from the same command table, so the list printed at
// the terminal is the authority and cannot drift from the code. The
// commands span analysis (figure1, analyze, capacity, backlog, afdx,
// schedulers), simulation (simulate, baseline, twoswitch), the parallel
// sweep engine (sweep, validate, topo), scenario authoring (scenario),
// the fuzzer-survivor corpus replay (corpus), and a long-running HTTP
// service (serve) whose responses are byte-identical to the corresponding
// subcommands.
//
// Every -config flag accepts a path or "-" for stdin, so scenarios pipe:
//
//	rtether scenario -topology dual | rtether validate -config -
//
// The scenario file is the single currency of the system: its network
// section (switches, trunks, station placement, redundant planes with
// per-plane skew/rate-scale/failure specs, per-link rate/propagation-delay
// overrides) and sim section (horizon, seed, source mode, BER, the ARINC
// 664 skew_max integrity window, …) reach every pipeline.
//
// The sweep-style commands run on the parallel scenario-sweep engine:
// -parallel sets the worker count (0 = all CPUs), -reps the number of
// Monte-Carlo replications, -seed the root of the per-replication RNG
// substreams. Output is bit-identical at any -parallel value.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/topology"
)

// stdout is the destination of command output; tests swap it for a buffer.
var stdout io.Writer = os.Stdout

// stderr is the destination of diagnostics; tests swap it for a buffer.
var stderr io.Writer = os.Stderr

// stdin is the source of `-config -` documents; tests swap it for a reader.
var stdin io.Reader = os.Stdin

// Exit codes, kept consistent across every subcommand so scripts and CI
// can branch on them:
//
//	0  success (including an explicit help request)
//	1  the command ran and failed: malformed or unreadable -config,
//	   validation error, simulation or I/O failure
//	2  usage error: no or unknown subcommand, bad flags
const (
	exitOK    = 0
	exitErr   = 1
	exitUsage = 2
)

// errHelp reports an explicit help request (-h/-help), which is a clean
// exit, not a failure.
var errHelp = errors.New("help requested")

// usageErr marks a command-line parsing failure. The flag package has
// already printed the diagnostic and the command's defaults when it is
// raised, so main only translates it into exit code 2.
type usageErr struct{ error }

// newFlagSet builds a subcommand flag set that reports errors instead of
// exiting, so the exit-code policy lives in one place (run) and tests can
// observe it in-process.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// parseFlags classifies a flag.Parse result under the exit-code policy:
// nil on success, errHelp for an explicit help request, usageErr for a
// malformed command line.
func parseFlags(fs *flag.FlagSet, args []string) error {
	switch err := fs.Parse(args); {
	case err == nil:
		return nil
	case errors.Is(err, flag.ErrHelp):
		return errHelp
	default:
		return usageErr{err}
	}
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// command is one rtether subcommand: the dispatch target and its usage
// summary. Continuation lines in help (after a \n) are indented under
// the first by the usage printer.
type command struct {
	name string
	run  func(args []string) error
	help string
}

// commands is the single source of truth for both the dispatch in run()
// and the text printed by usage(), so the help can never drift from the
// code again.
var commands = []command{
	{"figure1", cmdFigure1, "delay bounds of both approaches (the paper's Figure 1)"},
	{"analyze", cmdAnalyze, "per-connection bounds (single-hop and end-to-end)"},
	{"simulate", cmdSimulate, "run the discrete-event simulation and report latencies"},
	{"baseline", cmdBaseline, "the same workload on a MIL-STD-1553B bus"},
	{"sweep", cmdSweep, "rate ablation + rates × loads grid cross-validation (parallel engine)"},
	{"validate", cmdValidate, "check simulated worst cases against analytic bounds"},
	{"capacity", cmdCapacity, "minimal link rate meeting all deadlines, per approach"},
	{"backlog", cmdBacklog, "buffer dimensioning: a backlog bound for every directed edge (uplinks,\n" +
		"trunks both ways, destination ports), grouped per switch; -dimension\n" +
		"emits the scenario JSON with derived per-port queue capacities"},
	{"afdx", cmdAFDX, "map the workload onto ARINC 664 virtual links and compare"},
	{"twoswitch", cmdTwoSwitch, "bounds and simulation on a cascaded two-switch topology"},
	{"topo", cmdTopo, "unified engine over every architecture family (add -grid for topology × rate × load)"},
	{"schedulers", cmdSchedulers, "urgent-class bound under FCFS / strict / preemptive / DRR"},
	{"scenario", cmdScenario, "print a scenario JSON template (-topology star|cascade|tree|chain|dual|dualskew\n" +
		"adds that architecture as a network section; edit & pass via -config,\n" +
		`where "-" reads stdin)`},
	{"corpus", cmdCorpus, "replay the committed fuzzer-survivor corpus (testdata/corpus) through\n" +
		"every soundness invariant; output is bit-identical at any -parallel"},
	{"serve", cmdServe, "scenario-analysis HTTP service: POST /v1/{analyze,backlog,validate,sweep},\n" +
		"content-addressed result cache, weighted-fair admission; responses are\n" +
		"byte-identical to the matching subcommand"},
}

// run dispatches the subcommand and returns the process exit code. It is
// the single authority on exit codes — see the exit* constants.
func run(argv []string) int {
	if len(argv) < 1 {
		usage()
		return exitUsage
	}
	cmd, args := argv[0], argv[1:]
	if cmd == "-h" || cmd == "--help" || cmd == "help" {
		usage()
		return exitOK
	}
	var err error
	found := false
	for _, c := range commands {
		if c.name == cmd {
			err, found = c.run(args), true
			break
		}
	}
	if !found {
		fmt.Fprintf(stderr, "rtether: unknown command %q\n", cmd)
		usage()
		return exitUsage
	}
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, errHelp):
		return exitOK
	default:
		var ue usageErr
		if errors.As(err, &ue) {
			return exitUsage
		}
		fmt.Fprintf(stderr, "rtether %s: %v\n", cmd, err)
		return exitErr
	}
}

func usage() {
	fmt.Fprintln(stderr, "rtether — real-time switched Ethernet for military applications (CoNEXT'05 reproduction)")
	fmt.Fprintln(stderr, "\ncommands:")
	const indent = "             " // two + the widest name + one
	for _, c := range commands {
		lines := strings.Split(c.help, "\n")
		fmt.Fprintf(stderr, "  %-10s %s\n", c.name, lines[0])
		for _, l := range lines[1:] {
			fmt.Fprintf(stderr, "%s%s\n", indent, l)
		}
	}
}

// loadScenario reads -config ("-" = stdin) or falls back to the built-in
// real case.
func loadScenario(path string) (*topology.Config, error) {
	switch path {
	case "":
		return topology.Default(), nil
	case "-":
		return topology.Load(stdin)
	default:
		return topology.LoadFile(path)
	}
}

// bindScenario loads -config and binds it into a runnable Scenario:
// workload and network validated, routing precomputed, sim section folded
// over the paper-matched defaults.
func bindScenario(path string) (*core.Scenario, error) {
	cfg, err := loadScenario(path)
	if err != nil {
		return nil, err
	}
	return core.NewScenario(cfg)
}
