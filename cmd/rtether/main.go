// Command rtether drives the reproduction of "Real-Time Communication over
// Switched Ethernet for Military Applications" (Mifdaoui, Frances, Fraboul;
// CoNEXT 2005) from the command line.
//
// Usage:
//
//	rtether figure1   [-config file.json] [-csv]   # the paper's Figure 1
//	rtether analyze   [-config file.json] [-e2e]   # per-connection bounds
//	rtether simulate  [-config file.json] [-approach fcfs|priority] [-horizon 2s]
//	rtether baseline  [-config file.json] [-reps n] [-parallel w] [-seed s]
//	rtether sweep     [-parallel w] [-reps n] [-seed s] [-nogrid]  # scenario sweeps
//	rtether validate  [-config file.json] [-reps n] [-parallel w] [-seed s]
//	rtether topo      [-grid] [-topologies star,chain,...]  # every architecture family
//	rtether scenario  [-topology family]           # print a scenario JSON template
//
// Every -config flag accepts a path or "-" for stdin, so scenarios pipe:
//
//	rtether scenario -topology dual | rtether validate -config -
//
// The scenario file is the single currency of the system: its network
// section (switches, trunks, station placement, redundant planes with
// per-plane skew/rate-scale/failure specs, per-link rate/propagation-delay
// overrides) and sim section (horizon, seed, source mode, BER, the ARINC
// 664 skew_max integrity window, …) reach every pipeline.
//
// The sweep-style commands run on the parallel scenario-sweep engine:
// -parallel sets the worker count (0 = all CPUs), -reps the number of
// Monte-Carlo replications, -seed the root of the per-replication RNG
// substreams. Output is bit-identical at any -parallel value.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/topology"
)

// stdout is the destination of command output; tests swap it for a buffer.
var stdout io.Writer = os.Stdout

// stderr is the destination of diagnostics; tests swap it for a buffer.
var stderr io.Writer = os.Stderr

// stdin is the source of `-config -` documents; tests swap it for a reader.
var stdin io.Reader = os.Stdin

// Exit codes, kept consistent across every subcommand so scripts and CI
// can branch on them:
//
//	0  success (including an explicit help request)
//	1  the command ran and failed: malformed or unreadable -config,
//	   validation error, simulation or I/O failure
//	2  usage error: no or unknown subcommand, bad flags
const (
	exitOK    = 0
	exitErr   = 1
	exitUsage = 2
)

// errHelp reports an explicit help request (-h/-help), which is a clean
// exit, not a failure.
var errHelp = errors.New("help requested")

// usageErr marks a command-line parsing failure. The flag package has
// already printed the diagnostic and the command's defaults when it is
// raised, so main only translates it into exit code 2.
type usageErr struct{ error }

// newFlagSet builds a subcommand flag set that reports errors instead of
// exiting, so the exit-code policy lives in one place (run) and tests can
// observe it in-process.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// parseFlags classifies a flag.Parse result under the exit-code policy:
// nil on success, errHelp for an explicit help request, usageErr for a
// malformed command line.
func parseFlags(fs *flag.FlagSet, args []string) error {
	switch err := fs.Parse(args); {
	case err == nil:
		return nil
	case errors.Is(err, flag.ErrHelp):
		return errHelp
	default:
		return usageErr{err}
	}
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// run dispatches the subcommand and returns the process exit code. It is
// the single authority on exit codes — see the exit* constants.
func run(argv []string) int {
	if len(argv) < 1 {
		usage()
		return exitUsage
	}
	cmd, args := argv[0], argv[1:]
	var err error
	switch cmd {
	case "figure1":
		err = cmdFigure1(args)
	case "analyze":
		err = cmdAnalyze(args)
	case "simulate":
		err = cmdSimulate(args)
	case "baseline":
		err = cmdBaseline(args)
	case "sweep":
		err = cmdSweep(args)
	case "validate":
		err = cmdValidate(args)
	case "capacity":
		err = cmdCapacity(args)
	case "backlog":
		err = cmdBacklog(args)
	case "afdx":
		err = cmdAFDX(args)
	case "twoswitch":
		err = cmdTwoSwitch(args)
	case "topo":
		err = cmdTopo(args)
	case "schedulers":
		err = cmdSchedulers(args)
	case "scenario":
		err = cmdScenario(args)
	case "-h", "--help", "help":
		usage()
		return exitOK
	default:
		fmt.Fprintf(stderr, "rtether: unknown command %q\n", cmd)
		usage()
		return exitUsage
	}
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, errHelp):
		return exitOK
	default:
		var ue usageErr
		if errors.As(err, &ue) {
			return exitUsage
		}
		fmt.Fprintf(stderr, "rtether %s: %v\n", cmd, err)
		return exitErr
	}
}

func usage() {
	fmt.Fprint(stderr, `rtether — real-time switched Ethernet for military applications (CoNEXT'05 reproduction)

commands:
  figure1    delay bounds of both approaches (the paper's Figure 1)
  analyze    per-connection bounds (single-hop and end-to-end)
  simulate   run the discrete-event simulation and report latencies
  baseline   the same workload on a MIL-STD-1553B bus
  sweep      rate ablation + rates × loads grid cross-validation (parallel engine)
  validate   check simulated worst cases against analytic bounds
  capacity   minimal link rate meeting all deadlines, per approach
  backlog    buffer dimensioning: a backlog bound for every directed edge (uplinks,
             trunks both ways, destination ports), grouped per switch; -dimension
             emits the scenario JSON with derived per-port queue capacities
  afdx       map the workload onto ARINC 664 virtual links and compare
  twoswitch  bounds and simulation on a cascaded two-switch topology
  topo       unified engine over every architecture family (add -grid for topology × rate × load)
  schedulers urgent-class bound under FCFS / strict / preemptive / DRR
  scenario   print a scenario JSON template (-topology star|cascade|tree|chain|dual|dualskew
             adds that architecture as a network section; edit & pass via -config,
             where "-" reads stdin)
`)
}

// loadScenario reads -config ("-" = stdin) or falls back to the built-in
// real case.
func loadScenario(path string) (*topology.Config, error) {
	switch path {
	case "":
		return topology.Default(), nil
	case "-":
		return topology.Load(stdin)
	default:
		return topology.LoadFile(path)
	}
}

// bindScenario loads -config and binds it into a runnable Scenario:
// workload and network validated, routing precomputed, sim section folded
// over the paper-matched defaults.
func bindScenario(path string) (*core.Scenario, error) {
	cfg, err := loadScenario(path)
	if err != nil {
		return nil, err
	}
	return core.NewScenario(cfg)
}
