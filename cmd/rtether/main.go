// Command rtether drives the reproduction of "Real-Time Communication over
// Switched Ethernet for Military Applications" (Mifdaoui, Frances, Fraboul;
// CoNEXT 2005) from the command line.
//
// Usage:
//
//	rtether figure1   [-config file.json] [-csv]   # the paper's Figure 1
//	rtether analyze   [-config file.json] [-e2e]   # per-connection bounds
//	rtether simulate  [-config file.json] [-approach fcfs|priority] [-horizon 2s]
//	rtether baseline  [-config file.json]          # MIL-STD-1553B baseline
//	rtether sweep     [-config file.json]          # link-rate ablation
//	rtether validate  [-config file.json]          # bounds vs simulation
//	rtether scenario                               # print the built-in scenario JSON
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/topology"
)

// stdout is the destination of command output; tests swap it for a buffer.
var stdout io.Writer = os.Stdout

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "figure1":
		err = cmdFigure1(args)
	case "analyze":
		err = cmdAnalyze(args)
	case "simulate":
		err = cmdSimulate(args)
	case "baseline":
		err = cmdBaseline(args)
	case "sweep":
		err = cmdSweep(args)
	case "validate":
		err = cmdValidate(args)
	case "capacity":
		err = cmdCapacity(args)
	case "backlog":
		err = cmdBacklog(args)
	case "afdx":
		err = cmdAFDX(args)
	case "twoswitch":
		err = cmdTwoSwitch(args)
	case "schedulers":
		err = cmdSchedulers(args)
	case "scenario":
		err = cmdScenario(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rtether: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtether %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `rtether — real-time switched Ethernet for military applications (CoNEXT'05 reproduction)

commands:
  figure1    delay bounds of both approaches (the paper's Figure 1)
  analyze    per-connection bounds (single-hop and end-to-end)
  simulate   run the discrete-event simulation and report latencies
  baseline   the same workload on a MIL-STD-1553B bus
  sweep      bounds across link rates (10M/100M/1G)
  validate   check simulated worst cases against analytic bounds
  capacity   minimal link rate meeting all deadlines, per approach
  backlog    switch buffer dimensioning (backlog bounds per port)
  afdx       map the workload onto ARINC 664 virtual links and compare
  twoswitch  bounds and simulation on a cascaded two-switch topology
  schedulers urgent-class bound under FCFS / strict / preemptive / DRR
  scenario   print the built-in scenario as JSON (edit & pass via -config)
`)
}

// loadScenario reads -config or falls back to the built-in real case.
func loadScenario(path string) (*topology.Config, error) {
	if path == "" {
		return topology.Default(), nil
	}
	return topology.LoadFile(path)
}
