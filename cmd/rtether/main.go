// Command rtether drives the reproduction of "Real-Time Communication over
// Switched Ethernet for Military Applications" (Mifdaoui, Frances, Fraboul;
// CoNEXT 2005) from the command line.
//
// Usage:
//
//	rtether figure1   [-config file.json] [-csv]   # the paper's Figure 1
//	rtether analyze   [-config file.json] [-e2e]   # per-connection bounds
//	rtether simulate  [-config file.json] [-approach fcfs|priority] [-horizon 2s]
//	rtether baseline  [-config file.json] [-reps n] [-parallel w] [-seed s]
//	rtether sweep     [-parallel w] [-reps n] [-seed s] [-nogrid]  # scenario sweeps
//	rtether validate  [-config file.json] [-reps n] [-parallel w] [-seed s]
//	rtether topo      [-grid] [-topologies star,chain,...]  # every architecture family
//	rtether scenario  [-topology family]           # print a scenario JSON template
//
// Every -config flag accepts a path or "-" for stdin, so scenarios pipe:
//
//	rtether scenario -topology dual | rtether validate -config -
//
// The scenario file is the single currency of the system: its network
// section (switches, trunks, station placement, redundant planes with
// per-plane skew/rate-scale/failure specs, per-link rate/propagation-delay
// overrides) and sim section (horizon, seed, source mode, BER, the ARINC
// 664 skew_max integrity window, …) reach every pipeline.
//
// The sweep-style commands run on the parallel scenario-sweep engine:
// -parallel sets the worker count (0 = all CPUs), -reps the number of
// Monte-Carlo replications, -seed the root of the per-replication RNG
// substreams. Output is bit-identical at any -parallel value.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/topology"
)

// stdout is the destination of command output; tests swap it for a buffer.
var stdout io.Writer = os.Stdout

// stdin is the source of `-config -` documents; tests swap it for a reader.
var stdin io.Reader = os.Stdin

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "figure1":
		err = cmdFigure1(args)
	case "analyze":
		err = cmdAnalyze(args)
	case "simulate":
		err = cmdSimulate(args)
	case "baseline":
		err = cmdBaseline(args)
	case "sweep":
		err = cmdSweep(args)
	case "validate":
		err = cmdValidate(args)
	case "capacity":
		err = cmdCapacity(args)
	case "backlog":
		err = cmdBacklog(args)
	case "afdx":
		err = cmdAFDX(args)
	case "twoswitch":
		err = cmdTwoSwitch(args)
	case "topo":
		err = cmdTopo(args)
	case "schedulers":
		err = cmdSchedulers(args)
	case "scenario":
		err = cmdScenario(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rtether: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtether %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `rtether — real-time switched Ethernet for military applications (CoNEXT'05 reproduction)

commands:
  figure1    delay bounds of both approaches (the paper's Figure 1)
  analyze    per-connection bounds (single-hop and end-to-end)
  simulate   run the discrete-event simulation and report latencies
  baseline   the same workload on a MIL-STD-1553B bus
  sweep      rate ablation + rates × loads grid cross-validation (parallel engine)
  validate   check simulated worst cases against analytic bounds
  capacity   minimal link rate meeting all deadlines, per approach
  backlog    buffer dimensioning: a backlog bound for every directed edge (uplinks,
             trunks both ways, destination ports), grouped per switch; -dimension
             emits the scenario JSON with derived per-port queue capacities
  afdx       map the workload onto ARINC 664 virtual links and compare
  twoswitch  bounds and simulation on a cascaded two-switch topology
  topo       unified engine over every architecture family (add -grid for topology × rate × load)
  schedulers urgent-class bound under FCFS / strict / preemptive / DRR
  scenario   print a scenario JSON template (-topology star|cascade|tree|chain|dual|dualskew
             adds that architecture as a network section; edit & pass via -config,
             where "-" reads stdin)
`)
}

// loadScenario reads -config ("-" = stdin) or falls back to the built-in
// real case.
func loadScenario(path string) (*topology.Config, error) {
	switch path {
	case "":
		return topology.Default(), nil
	case "-":
		return topology.Load(stdin)
	default:
		return topology.LoadFile(path)
	}
}

// bindScenario loads -config and binds it into a runnable Scenario:
// workload and network validated, routing precomputed, sim section folded
// over the paper-matched defaults.
func bindScenario(path string) (*core.Scenario, error) {
	cfg, err := loadScenario(path)
	if err != nil {
		return nil, err
	}
	return core.NewScenario(cfg)
}
