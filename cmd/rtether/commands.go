package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// cmdFigure1 regenerates the paper's Figure 1: per-class delay bounds of
// the two approaches, plus a per-connection table.
func cmdFigure1(args []string) error {
	fs := newFlagSet("figure1")
	config := fs.String("config", "", "scenario JSON (default: built-in real case)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	scen, err := loadScenario(*config)
	if err != nil {
		return err
	}
	set, err := scen.ToSet()
	if err != nil {
		return err
	}
	fig, err := core.RunFigure1(set, scen.AnalysisConfig())
	if err != nil {
		return err
	}

	tbl := report.NewTable("connection", "class", "deadline", "FCFS bound", "priority bound", "FCFS ok", "priority ok")
	for i, f := range fig.FCFS.Flows {
		p := fig.Priority.Flows[i]
		tbl.AddRow(f.Spec.Msg.Name, f.Spec.Msg.Priority, f.Spec.Msg.Deadline,
			f.EndToEnd, p.EndToEnd, mark(f.Met), mark(p.Met))
	}
	if *csv {
		return tbl.CSV(stdout)
	}

	fmt.Fprintf(stdout, "Figure 1 — delay bounds, %s (C=%v, t_techno=%v)\n\n",
		scen.Name, scen.AnalysisConfig().LinkRate, scen.AnalysisConfig().TTechno)
	labels := []string{"P0 priority", "P1 priority", "P2 priority", "P3 priority", "worst FCFS"}
	worstFCFS := simtime.Duration(0)
	for _, f := range fig.FCFS.Flows {
		if f.EndToEnd > worstFCFS {
			worstFCFS = f.EndToEnd
		}
	}
	values := []float64{
		fig.Priority.ClassWorst[0].Milliseconds(),
		fig.Priority.ClassWorst[1].Milliseconds(),
		fig.Priority.ClassWorst[2].Milliseconds(),
		fig.Priority.ClassWorst[3].Milliseconds(),
		worstFCFS.Milliseconds(),
	}
	if err := report.Bars(stdout, "worst-case bound per class (ms)", labels, values, 40); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nFCFS violations: %d of %d connections (%s)\n",
		fig.FCFS.Violations, len(fig.FCFS.Flows), strings.Join(firstN(fig.FCFS.ViolatedNames(), 6), ", "))
	fmt.Fprintf(stdout, "priority violations: %d\n\n", fig.Priority.Violations)
	_, err = tbl.WriteTo(stdout)
	return err
}

// cmdAnalyze prints per-connection bounds under one or both models. With
// a scenario declaring a custom network, the end-to-end model composes the
// bounds over that architecture, pricing each hop at its own link rate.
func cmdAnalyze(args []string) error {
	fs := newFlagSet("analyze")
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	e2e := fs.Bool("e2e", false, "use the compositional end-to-end analysis")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	s, err := bindScenario(*config)
	if err != nil {
		return err
	}
	set := s.Set
	run := func(set *traffic.Set, a analysis.Approach, cfg analysis.Config) (*analysis.Result, error) {
		return analysis.SingleHop(set, a, cfg)
	}
	model := "single-hop (paper-faithful)"
	if *e2e {
		run = func(set *traffic.Set, a analysis.Approach, cfg analysis.Config) (*analysis.Result, error) {
			return s.Analyze(a)
		}
		model = "end-to-end (compositional)"
		if s.Cfg != nil && s.Cfg.Network != nil {
			model = fmt.Sprintf("end-to-end (tree-composed over %q: %d switches, %d planes)",
				s.Net.Name, s.Net.Switches, s.Net.PlaneCount())
		}
	}
	fmt.Fprintf(stdout, "analysis model: %s\n\n", model)
	for _, approach := range []analysis.Approach{analysis.FCFS, analysis.Priority} {
		res, err := run(set, approach, s.Analysis())
		if err != nil {
			return err
		}
		tbl := report.NewTable("connection", "class", "source delay", "port delay", "bound", "jitter", "deadline", "ok")
		for _, f := range res.Flows {
			tbl.AddRow(f.Spec.Msg.Name, f.Spec.Msg.Priority, f.SourceDelay, f.PortDelay,
				f.EndToEnd, f.Jitter, f.Spec.Msg.Deadline, mark(f.Met))
		}
		fmt.Fprintf(stdout, "== %v: %d violations ==\n", approach, res.Violations)
		if _, err := tbl.WriteTo(stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

// cmdSimulate runs the DES over the scenario's architecture — the network
// section's switches, trunks, redundant planes and per-link overrides all
// take effect — and reports observed latencies. Explicitly passed flags
// override the scenario's sim section.
func cmdSimulate(args []string) error {
	fs := newFlagSet("simulate")
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	approachFlag := fs.String("approach", "priority", "fcfs or priority")
	horizon := fs.Duration("horizon", 2_000_000_000, "simulated time span")
	seed := fs.Uint64("seed", 1, "random seed")
	pcapPath := fs.String("pcap", "", "capture delivered frames to a pcap file")
	tracePath := fs.String("trace", "", "write the frame lifecycle log as CSV")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	s, err := bindScenario(*config)
	if err != nil {
		return err
	}
	passed := fsFlagsSet(fs)
	if passed["approach"] {
		approach, err := parseApproach(*approachFlag)
		if err != nil {
			return err
		}
		s.Sim.Approach = approach
	}
	if passed["horizon"] {
		s.Sim.Horizon = simtime.FromStd(*horizon)
	}
	if passed["seed"] {
		s.Sim.Seed = *seed
	}
	if *pcapPath != "" {
		f, err := openPCAP(*pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		s.Sim.PCAP = trace.NewPCAP(f)
	}
	if *tracePath != "" {
		s.Sim.Recorder = trace.NewRecorder(0)
	}
	res, err := s.Simulate()
	if err != nil {
		return err
	}
	if s.Sim.PCAP != nil {
		fmt.Fprintf(stdout, "wrote %d frames to %s\n", s.Sim.PCAP.Packets, *pcapPath)
	}
	if s.Sim.Recorder != nil {
		if err := writeTraceCSV(*tracePath, s.Sim.Recorder); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d lifecycle events to %s\n", len(s.Sim.Recorder.Events()), *tracePath)
	}
	tbl := report.NewTable("connection", "class", "delivered", "min", "mean", "max", "deadline misses")
	for _, m := range s.Set.Messages {
		f := res.Flows[m.Name]
		tbl.AddRow(m.Name, m.Priority, f.Delivered,
			f.Latency.Min(), f.Latency.Mean(), f.Latency.Max(), f.DeadlineMisses)
	}
	fmt.Fprintf(stdout, "simulated %v under %v on %s (%d switches, %d planes; %d events, %d deliveries, %d drops)\n\n",
		s.Sim.Horizon, s.Sim.Approach, s.Net.Name, s.Net.Switches, s.Net.PlaneCount(),
		res.Events, res.TotalDelivered(), res.Dropped)
	_, err = tbl.WriteTo(stdout)
	return err
}

// fsFlagsSet reports which flags were explicitly passed — those override
// the scenario file; everything else defers to it.
func fsFlagsSet(fs *flag.FlagSet) map[string]bool {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// cmdBaseline runs the MIL-STD-1553B comparison over the scenario's
// horizon and configured bus controller.
func cmdBaseline(args []string) error {
	fs := newFlagSet("baseline")
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	parallel := fs.Int("parallel", 1, "concurrent replications (0 = all CPUs)")
	reps := fs.Int("reps", 1, "Monte-Carlo bus replications")
	seed := fs.Uint64("seed", 1, "root seed for replication RNG substreams")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	s, err := bindScenario(*config)
	if err != nil {
		return err
	}
	set := s.Set
	bc, err := s.BusController()
	if err != nil {
		return err
	}
	opts := core.SweepOptions{Workers: *parallel, Reps: *reps, Seed: *seed}
	b, err := s.Baseline(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "MIL-STD-1553B baseline: BC=%s, utilization %.1f%%, overruns %d (%d replications)\n",
		bc, 100*b.Utilization, b.Overruns, b.Reps)
	fmt.Fprintf(stdout, "schedule: worst minor frame %v periodic + %v sporadic budget (limit %v)\n\n",
		b.Schedule.WorstPeriodicLoad(), b.Schedule.SporadicBudget(), traffic.MinorFrame)
	tbl := report.NewTable("connection", "kind", "1553 worst case", "1553 observed max", "observed mean")
	for _, name := range b.SortedNames() {
		f := b.Flows[name]
		m := set.Find(name)
		tbl.AddRow(name, m.Kind, f.WorstCase, f.Observed.Max(), f.Observed.Mean())
	}
	_, err = tbl.WriteTo(stdout)
	return err
}

// cmdSweep drives the parallel scenario-sweep engine: the link-rate
// ablation, then a rates × loads grid whose every cell cross-validates
// the analytic bounds against opts.Reps simulation replications. For a
// fixed -seed the output is bit-identical at any -parallel value.
func cmdSweep(args []string) error {
	fs := newFlagSet("sweep")
	config := fs.String("config", "", "scenario JSON, path or - for stdin (rate ablation only; the grid uses the built-in catalog)")
	parallel := fs.Int("parallel", 1, "concurrent scenario evaluations (0 = all CPUs)")
	reps := fs.Int("reps", 1, "Monte-Carlo simulation replications per grid cell")
	seed := fs.Uint64("seed", 1, "root seed for replication RNG substreams")
	approachFlag := fs.String("approach", "priority", "grid simulation discipline: fcfs or priority")
	horizon := fs.Duration("horizon", 500_000_000, "simulated time span per grid replication")
	noGrid := fs.Bool("nogrid", false, "skip the grid cross-validation (rate ablation only)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	s, err := bindScenario(*config)
	if err != nil {
		return err
	}
	set := s.Set
	opts := core.SweepOptions{Workers: *parallel, Reps: *reps, Seed: *seed}

	rates := []simtime.Rate{10 * simtime.Mbps, 25 * simtime.Mbps, 50 * simtime.Mbps,
		100 * simtime.Mbps, simtime.Gbps}
	points, err := core.RunRateSweep(set, rates, s.Analysis(), opts)
	if err != nil {
		return err
	}
	tbl := report.NewTable("link rate", "FCFS P0 bound", "priority P0 bound", "FCFS violations", "priority violations")
	for _, p := range points {
		tbl.AddRow(p.Rate, p.FCFSUrgent, p.PriorityUrgent, p.FCFSViolations, p.PriorityViolations)
	}
	fmt.Fprintln(stdout, "link-rate ablation (A1): \"a higher rate is not sufficient\"")
	if _, err := tbl.WriteTo(stdout); err != nil {
		return err
	}
	if *noGrid {
		return nil
	}

	approach, err := parseApproach(*approachFlag)
	if err != nil {
		return err
	}
	cfg := core.DefaultSimConfig(approach)
	cfg.TTechno = s.Sim.TTechno
	cfg.Horizon = simtime.FromStd(*horizon)
	// A single replication checks the deterministic critical instant;
	// actual Monte-Carlo needs randomness to sample, so multiple
	// replications run with random phases and sporadic gaps instead.
	if *reps > 1 {
		cfg.Mode = traffic.RandomGaps
		cfg.MeanSlack = core.DefaultMeanSlack
		cfg.AlignPhases = false
	}
	grid := core.Grid([]simtime.Rate{10 * simtime.Mbps, 25 * simtime.Mbps, 100 * simtime.Mbps},
		[]int{0, 8, 16})
	cells, err := core.RunGrid(grid, cfg, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\ngrid cross-validation (S3): bounds vs %d×%v simulation under %v (%s sources)\n",
		*reps, cfg.Horizon, approach, sourceRegime(cfg))
	gt := report.NewTable("link rate", "extra RTs", "connections", "worst e2e bound",
		"observed worst", "observed p99", "delivered", "analytic misses", "sound")
	for _, c := range cells {
		gt.AddRow(c.Point.Rate, c.Point.ExtraRTs, c.Connections, c.BoundWorst,
			c.ObservedWorst, c.ObservedP99, c.Delivered, c.Violations, mark(c.Sound()))
	}
	if _, err := gt.WriteTo(stdout); err != nil {
		return err
	}
	unsound := 0
	for _, c := range cells {
		if !c.Sound() {
			unsound++
		}
	}
	fmt.Fprintf(stdout, "cells with bound violations: %d of %d\n", unsound, len(cells))
	return nil
}

// cmdValidate compares simulation against bounds, optionally as a
// replicated Monte-Carlo experiment on the sweep engine. The scenario's
// network section takes full effect: on a custom architecture the bounds
// are the tree-composed ones and the simulation runs the same topology,
// per-link overrides included.
func cmdValidate(args []string) error {
	fs := newFlagSet("validate")
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	parallel := fs.Int("parallel", 1, "concurrent replications (0 = all CPUs)")
	reps := fs.Int("reps", 1, "Monte-Carlo replications per approach")
	seed := fs.Uint64("seed", 1, "root seed for replication RNG substreams")
	horizon := fs.Duration("horizon", 2_000_000_000, "simulated time span per replication")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	s, err := bindScenario(*config)
	if err != nil {
		return err
	}
	// Backlog bounds are discipline-independent (vertical deviation of the
	// same token buckets), so one table serves both approaches below.
	backlogs, err := s.Backlogs()
	if err != nil {
		return err
	}
	passed := fsFlagsSet(fs)
	opts := core.SweepOptions{Workers: *parallel, Reps: *reps, Seed: *seed}
	for _, approach := range []analysis.Approach{analysis.FCFS, analysis.Priority} {
		sc := s.WithApproach(approach)
		if passed["horizon"] || s.Cfg == nil || s.Cfg.Sim == nil || s.Cfg.Sim.HorizonUs == 0 {
			sc.Sim.Horizon = simtime.FromStd(*horizon)
		}
		// As in cmdSweep: replicated runs sample random phases/gaps, a
		// single run checks the deterministic critical instant — unless
		// the scenario file pins the source regime itself (mode or
		// align_phases set explicitly).
		pinnedSource := s.Cfg != nil && s.Cfg.Sim != nil &&
			(s.Cfg.Sim.Mode != "" || s.Cfg.Sim.AlignPhases != nil)
		if *reps > 1 && !pinnedSource {
			sc.Sim.Mode = traffic.RandomGaps
			sc.Sim.MeanSlack = core.DefaultMeanSlack
			sc.Sim.AlignPhases = false
		}
		v, err := sc.Validate(opts)
		if err != nil {
			return err
		}
		tbl := report.NewTable("connection", "class", "observed max", "observed p99", "e2e bound", "paper bound", "sound")
		for _, r := range v.Rows {
			p99 := simtime.Duration(0)
			if r.Latencies.N() > 0 {
				p99 = r.Latencies.Quantile(0.99)
			}
			tbl.AddRow(r.Name, r.Priority, r.Observed, p99, r.Bound, r.PaperBound, mark(r.Sound()))
		}
		bv := backlogs.CheckMarks(v.PortMaxBacklog)
		fmt.Fprintf(stdout, "== %v (%d replications, %s sources): all sound = %v, backlog sound = %v ==\n",
			approach, v.Reps, sourceRegime(sc.Sim), v.AllSound(), bv.Sound())
		if _, err := tbl.WriteTo(stdout); err != nil {
			return err
		}
		// The backlog half of the validation: observed queue high-water
		// marks (max over replications) against the per-edge bounds —
		// idle queues are elided, the header counts them all.
		bt := report.NewTable("queue", "observed max backlog", "backlog bound", "sound")
		for _, ke := range backlogs.Ordered() {
			observed, ok := v.PortMaxBacklog[ke.Key]
			if !ok || observed == 0 {
				continue
			}
			e := ke.Edge
			boundCol, sound := fmt.Sprintf("%d B", e.Bound.ByteCount()), observed <= e.Bound
			if e.Unstable {
				boundCol, sound = "unbounded", true
			}
			bt.AddRow(ke.Key, fmt.Sprintf("%d B", observed.ByteCount()), boundCol, mark(sound))
		}
		fmt.Fprintf(stdout, "backlog (%d queues checked, %d over bound):\n", bv.Ports, bv.Unsound)
		if _, err := bt.WriteTo(stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

// cmdScenario dumps a scenario JSON template: the built-in real case, or —
// with -topology — the real case on any built-in architecture family,
// network section included, as a starting point for custom architectures.
func cmdScenario(args []string) error {
	fs := newFlagSet("scenario")
	family := fs.String("topology", "", "built-in family (star|cascade|tree|chain|dual|dualskew): include that architecture as a network section")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	var scen *topology.Config
	var err error
	if *family == "" {
		scen, err = loadScenario("")
	} else {
		scen, err = topology.Template(*family)
	}
	if err != nil {
		return err
	}
	return scen.Save(stdout)
}

func parseApproach(s string) (analysis.Approach, error) {
	return analysis.ParseApproach(s)
}

// sourceRegime names the traffic-source regime of a simulation config.
func sourceRegime(cfg core.SimConfig) string {
	if cfg.AlignPhases && cfg.Mode == traffic.Greedy {
		return "critical-instant"
	}
	return "randomized"
}

func mark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

func firstN(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return append(s[:n:n], "…")
}
