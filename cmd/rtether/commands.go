package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// cmdFigure1 regenerates the paper's Figure 1: per-class delay bounds of
// the two approaches, plus a per-connection table.
func cmdFigure1(args []string) error {
	fs := newFlagSet("figure1")
	config := fs.String("config", "", "scenario JSON (default: built-in real case)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	scen, err := loadScenario(*config)
	if err != nil {
		return err
	}
	set, err := scen.ToSet()
	if err != nil {
		return err
	}
	fig, err := core.RunFigure1(set, scen.AnalysisConfig())
	if err != nil {
		return err
	}

	tbl := report.NewTable("connection", "class", "deadline", "FCFS bound", "priority bound", "FCFS ok", "priority ok")
	for i, f := range fig.FCFS.Flows {
		p := fig.Priority.Flows[i]
		tbl.AddRow(f.Spec.Msg.Name, f.Spec.Msg.Priority, f.Spec.Msg.Deadline,
			f.EndToEnd, p.EndToEnd, mark(f.Met), mark(p.Met))
	}
	if *csv {
		return tbl.CSV(stdout)
	}

	fmt.Fprintf(stdout, "Figure 1 — delay bounds, %s (C=%v, t_techno=%v)\n\n",
		scen.Name, scen.AnalysisConfig().LinkRate, scen.AnalysisConfig().TTechno)
	labels := []string{"P0 priority", "P1 priority", "P2 priority", "P3 priority", "worst FCFS"}
	worstFCFS := simtime.Duration(0)
	for _, f := range fig.FCFS.Flows {
		if f.EndToEnd > worstFCFS {
			worstFCFS = f.EndToEnd
		}
	}
	values := []float64{
		fig.Priority.ClassWorst[0].Milliseconds(),
		fig.Priority.ClassWorst[1].Milliseconds(),
		fig.Priority.ClassWorst[2].Milliseconds(),
		fig.Priority.ClassWorst[3].Milliseconds(),
		worstFCFS.Milliseconds(),
	}
	if err := report.Bars(stdout, "worst-case bound per class (ms)", labels, values, 40); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nFCFS violations: %d of %d connections (%s)\n",
		fig.FCFS.Violations, len(fig.FCFS.Flows), strings.Join(firstN(fig.FCFS.ViolatedNames(), 6), ", "))
	fmt.Fprintf(stdout, "priority violations: %d\n\n", fig.Priority.Violations)
	_, err = tbl.WriteTo(stdout)
	return err
}

// cmdAnalyze prints per-connection bounds under one or both models. With
// a scenario declaring a custom network, the end-to-end model composes the
// bounds over that architecture, pricing each hop at its own link rate.
func cmdAnalyze(args []string) error {
	fs := newFlagSet("analyze")
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	e2e := fs.Bool("e2e", false, "use the compositional end-to-end analysis")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	s, err := bindScenario(*config)
	if err != nil {
		return err
	}
	// One shared encoder with the scenario service: POST /v1/analyze
	// returns these very bytes for the same scenario.
	return render.Analyze(stdout, s, *e2e)
}

// cmdSimulate runs the DES over the scenario's architecture — the network
// section's switches, trunks, redundant planes and per-link overrides all
// take effect — and reports observed latencies. Explicitly passed flags
// override the scenario's sim section.
func cmdSimulate(args []string) error {
	fs := newFlagSet("simulate")
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	approachFlag := fs.String("approach", "priority", "fcfs or priority")
	horizon := fs.Duration("horizon", 2_000_000_000, "simulated time span")
	seed := fs.Uint64("seed", 1, "random seed")
	pcapPath := fs.String("pcap", "", "capture delivered frames to a pcap file")
	tracePath := fs.String("trace", "", "write the frame lifecycle log as CSV")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	s, err := bindScenario(*config)
	if err != nil {
		return err
	}
	passed := fsFlagsSet(fs)
	if passed["approach"] {
		approach, err := parseApproach(*approachFlag)
		if err != nil {
			return err
		}
		s.Sim.Approach = approach
	}
	if passed["horizon"] {
		s.Sim.Horizon = simtime.FromStd(*horizon)
	}
	if passed["seed"] {
		s.Sim.Seed = *seed
	}
	if *pcapPath != "" {
		f, err := openPCAP(*pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		s.Sim.PCAP = trace.NewPCAP(f)
	}
	if *tracePath != "" {
		s.Sim.Recorder = trace.NewRecorder(0)
	}
	res, err := s.Simulate()
	if err != nil {
		return err
	}
	if s.Sim.PCAP != nil {
		fmt.Fprintf(stdout, "wrote %d frames to %s\n", s.Sim.PCAP.Packets, *pcapPath)
	}
	if s.Sim.Recorder != nil {
		if err := writeTraceCSV(*tracePath, s.Sim.Recorder); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d lifecycle events to %s\n", len(s.Sim.Recorder.Events()), *tracePath)
	}
	tbl := report.NewTable("connection", "class", "delivered", "min", "mean", "max", "deadline misses")
	for _, m := range s.Set.Messages {
		f := res.Flows[m.Name]
		tbl.AddRow(m.Name, m.Priority, f.Delivered,
			f.Latency.Min(), f.Latency.Mean(), f.Latency.Max(), f.DeadlineMisses)
	}
	fmt.Fprintf(stdout, "simulated %v under %v on %s (%d switches, %d planes; %d events, %d deliveries, %d drops)\n\n",
		s.Sim.Horizon, s.Sim.Approach, s.Net.Name, s.Net.Switches, s.Net.PlaneCount(),
		res.Events, res.TotalDelivered(), res.Dropped)
	_, err = tbl.WriteTo(stdout)
	return err
}

// fsFlagsSet reports which flags were explicitly passed — those override
// the scenario file; everything else defers to it.
func fsFlagsSet(fs *flag.FlagSet) map[string]bool {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// cmdBaseline runs the MIL-STD-1553B comparison over the scenario's
// horizon and configured bus controller.
func cmdBaseline(args []string) error {
	fs := newFlagSet("baseline")
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	parallel := fs.Int("parallel", 1, "concurrent replications (0 = all CPUs)")
	reps := fs.Int("reps", 1, "Monte-Carlo bus replications")
	seed := fs.Uint64("seed", 1, "root seed for replication RNG substreams")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	s, err := bindScenario(*config)
	if err != nil {
		return err
	}
	set := s.Set
	bc, err := s.BusController()
	if err != nil {
		return err
	}
	opts := core.SweepOptions{Workers: *parallel, Reps: *reps, Seed: *seed}
	b, err := s.Baseline(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "MIL-STD-1553B baseline: BC=%s, utilization %.1f%%, overruns %d (%d replications)\n",
		bc, 100*b.Utilization, b.Overruns, b.Reps)
	fmt.Fprintf(stdout, "schedule: worst minor frame %v periodic + %v sporadic budget (limit %v)\n\n",
		b.Schedule.WorstPeriodicLoad(), b.Schedule.SporadicBudget(), traffic.MinorFrame)
	tbl := report.NewTable("connection", "kind", "1553 worst case", "1553 observed max", "observed mean")
	for _, name := range b.SortedNames() {
		f := b.Flows[name]
		m := set.Find(name)
		tbl.AddRow(name, m.Kind, f.WorstCase, f.Observed.Max(), f.Observed.Mean())
	}
	_, err = tbl.WriteTo(stdout)
	return err
}

// cmdSweep drives the parallel scenario-sweep engine: the link-rate
// ablation, then a rates × loads grid whose every cell cross-validates
// the analytic bounds against opts.Reps simulation replications. For a
// fixed -seed the output is bit-identical at any -parallel value.
func cmdSweep(args []string) error {
	fs := newFlagSet("sweep")
	config := fs.String("config", "", "scenario JSON, path or - for stdin (rate ablation only; the grid uses the built-in catalog)")
	parallel := fs.Int("parallel", 1, "concurrent scenario evaluations (0 = all CPUs)")
	reps := fs.Int("reps", 1, "Monte-Carlo simulation replications per grid cell")
	seed := fs.Uint64("seed", 1, "root seed for replication RNG substreams")
	approachFlag := fs.String("approach", "priority", "grid simulation discipline: fcfs or priority")
	horizon := fs.Duration("horizon", 500_000_000, "simulated time span per grid replication")
	noGrid := fs.Bool("nogrid", false, "skip the grid cross-validation (rate ablation only)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	s, err := bindScenario(*config)
	if err != nil {
		return err
	}
	set := s.Set
	opts := core.SweepOptions{Workers: *parallel, Reps: *reps, Seed: *seed}

	rates := []simtime.Rate{10 * simtime.Mbps, 25 * simtime.Mbps, 50 * simtime.Mbps,
		100 * simtime.Mbps, simtime.Gbps}
	points, err := core.RunRateSweep(set, rates, s.Analysis(), opts)
	if err != nil {
		return err
	}
	tbl := report.NewTable("link rate", "FCFS P0 bound", "priority P0 bound", "FCFS violations", "priority violations")
	for _, p := range points {
		tbl.AddRow(p.Rate, p.FCFSUrgent, p.PriorityUrgent, p.FCFSViolations, p.PriorityViolations)
	}
	fmt.Fprintln(stdout, "link-rate ablation (A1): \"a higher rate is not sufficient\"")
	if _, err := tbl.WriteTo(stdout); err != nil {
		return err
	}
	if *noGrid {
		return nil
	}

	approach, err := parseApproach(*approachFlag)
	if err != nil {
		return err
	}
	// SweepGridConfig randomizes sources when replicated (a single
	// replication checks the deterministic critical instant); the grid and
	// config builders are shared with the scenario service's /v1/sweep, so
	// the streamed cells and this table can never drift.
	cfg := core.SweepGridConfig(approach, s.Sim.TTechno, simtime.FromStd(*horizon), *reps)
	cells, err := core.RunGrid(core.DefaultSweepGrid(), cfg, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\ngrid cross-validation (S3): bounds vs %d×%v simulation under %v (%s sources)\n",
		*reps, cfg.Horizon, approach, sourceRegime(cfg))
	gt := report.NewTable("link rate", "extra RTs", "connections", "worst e2e bound",
		"observed worst", "observed p99", "delivered", "analytic misses", "sound")
	for _, c := range cells {
		gt.AddRow(c.Point.Rate, c.Point.ExtraRTs, c.Connections, c.BoundWorst,
			c.ObservedWorst, c.ObservedP99, c.Delivered, c.Violations, mark(c.Sound()))
	}
	if _, err := gt.WriteTo(stdout); err != nil {
		return err
	}
	unsound := 0
	for _, c := range cells {
		if !c.Sound() {
			unsound++
		}
	}
	fmt.Fprintf(stdout, "cells with bound violations: %d of %d\n", unsound, len(cells))
	return nil
}

// cmdValidate compares simulation against bounds, optionally as a
// replicated Monte-Carlo experiment on the sweep engine. The scenario's
// network section takes full effect: on a custom architecture the bounds
// are the tree-composed ones and the simulation runs the same topology,
// per-link overrides included.
func cmdValidate(args []string) error {
	fs := newFlagSet("validate")
	config := fs.String("config", "", "scenario JSON (path or - for stdin)")
	parallel := fs.Int("parallel", 1, "concurrent replications (0 = all CPUs)")
	reps := fs.Int("reps", 1, "Monte-Carlo replications per approach")
	seed := fs.Uint64("seed", 1, "root seed for replication RNG substreams")
	horizon := fs.Duration("horizon", 2_000_000_000, "simulated time span per replication")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	s, err := bindScenario(*config)
	if err != nil {
		return err
	}
	// One shared encoder with the scenario service (POST /v1/validate).
	opts := core.SweepOptions{Workers: *parallel, Reps: *reps, Seed: *seed}
	return render.Validate(stdout, s, opts, simtime.FromStd(*horizon), fsFlagsSet(fs)["horizon"])
}

// cmdScenario dumps a scenario JSON template: the built-in real case, or —
// with -topology — the real case on any built-in architecture family,
// network section included, as a starting point for custom architectures.
func cmdScenario(args []string) error {
	fs := newFlagSet("scenario")
	family := fs.String("topology", "", "built-in family (star|cascade|tree|chain|dual|dualskew): include that architecture as a network section")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	var scen *topology.Config
	var err error
	if *family == "" {
		scen, err = loadScenario("")
	} else {
		scen, err = topology.Template(*family)
	}
	if err != nil {
		return err
	}
	return scen.Save(stdout)
}

func parseApproach(s string) (analysis.Approach, error) {
	return analysis.ParseApproach(s)
}

// sourceRegime names the traffic-source regime of a simulation config.
func sourceRegime(cfg core.SimConfig) string { return render.SourceRegime(cfg) }

// mark renders a verdict column through the shared encoder package.
func mark(ok bool) string { return render.Mark(ok) }

func firstN(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return append(s[:n:n], "…")
}
