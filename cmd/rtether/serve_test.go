package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestServeMatchesCLI pins the service's core contract across the real
// HTTP boundary: for the same scenario and parameters, the response
// body of every cacheable endpoint is byte-identical to the stdout of
// the corresponding CLI subcommand. Both sides call the same
// internal/render encoder; this test proves no middleware, buffering or
// content negotiation perturbs the bytes on the way out.
func TestServeMatchesCLI(t *testing.T) {
	const fixture = "../../internal/topology/testdata/dual_hetero.json"
	scenario, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(serve.Config{CacheEntries: 8, MaxInflight: 2}))
	defer ts.Close()

	cases := []struct {
		name string
		path string
		argv []string
	}{
		{"analyze", "/v1/analyze", []string{"analyze", "-config", fixture}},
		{"analyze e2e", "/v1/analyze?e2e=1", []string{"analyze", "-config", fixture, "-e2e"}},
		{"backlog", "/v1/backlog", []string{"backlog", "-config", fixture}},
		{"backlog dimension", "/v1/backlog?dimension=1", []string{"backlog", "-config", fixture, "-dimension"}},
		{"validate", "/v1/validate?reps=2&seed=5&horizon_us=20000",
			[]string{"validate", "-config", fixture, "-reps", "2", "-seed", "5", "-horizon", "20ms"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, diag := runCapture(t, "", tc.argv...)
			if code != exitOK {
				t.Fatalf("CLI %v exited %d: %s", tc.argv, code, diag)
			}
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(string(scenario)))
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if string(body) != out {
				t.Errorf("HTTP body diverged from CLI stdout:\n--- HTTP ---\n%s\n--- CLI ---\n%s", body, out)
			}
		})
	}
}
