package main

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// cmdTopo drives the unified topology-generic engine (experiment M3):
// per architecture family it computes the tree-composed end-to-end bounds
// and cross-validates them against a simulation of the same scenario —
// the multi-switch extension of the paper only makes sense if every
// architecture runs under the same model. With -grid it sweeps the full
// topology × rate × load cross product on the parallel scenario-sweep
// engine (output bit-identical at any -parallel value).
func cmdTopo(args []string) error {
	fs := newFlagSet("topo")
	config := fs.String("config", "", "scenario JSON (default: built-in real case; the -grid workload scales the built-in catalog)")
	approachFlag := fs.String("approach", "priority", "fcfs or priority")
	horizon := fs.Duration("horizon", 500_000_000, "simulated time span")
	seed := fs.Uint64("seed", 1, "random seed (root seed in -grid mode)")
	ber := fs.Float64("ber", 0, "residual bit-error rate on every link")
	topos := fs.String("topologies", "", "comma-separated family keys (default: all)")
	grid := fs.Bool("grid", false, "sweep topology × rate × load with Monte-Carlo replications")
	parallel := fs.Int("parallel", 1, "concurrent scenario evaluations in -grid mode (0 = all CPUs)")
	reps := fs.Int("reps", 1, "simulation replications per grid cell")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	fams, err := selectFamilies(*topos)
	if err != nil {
		return err
	}
	approach, err := parseApproach(*approachFlag)
	if err != nil {
		return err
	}

	if *grid {
		if *config != "" {
			return fmt.Errorf("-config is not supported with -grid: the grid scales the built-in catalog per cell")
		}
		return topoGrid(fams, approach, *horizon, *seed, *ber, *parallel, *reps)
	}

	s, err := bindScenario(*config)
	if err != nil {
		return err
	}
	set := s.Set
	cfg := s.Sim
	// Explicit flags override the scenario's sim section; otherwise the
	// section wins, except the horizon, whose command default (500 ms,
	// shorter than the simulate default) applies when neither names one.
	passed := fsFlagsSet(fs)
	if passed["approach"] {
		cfg.Approach = approach
	}
	if passed["horizon"] || s.Cfg == nil || s.Cfg.Sim == nil || s.Cfg.Sim.HorizonUs == 0 {
		cfg.Horizon = simtime.FromStd(*horizon)
	}
	if passed["seed"] {
		cfg.Seed = *seed
	}
	if passed["ber"] {
		cfg.BER = *ber
	}
	approach = cfg.Approach

	// The scenario's own architecture (when it declares one) leads the
	// table, ahead of the built-in families — a custom network reaches
	// the same bounds-versus-simulation pipeline as every built-in.
	type entry struct {
		key  string
		topo *topology.Network
	}
	var entries []entry
	if s.Cfg != nil && s.Cfg.Network != nil {
		entries = append(entries, entry{"scenario:" + s.Net.Name, s.Net})
	}
	for _, fam := range fams {
		entries = append(entries, entry{fam.Key, fam.Build(set.Stations())})
	}

	fmt.Fprintf(stdout, "unified network engine: %s under %v (horizon %v, BER %g)\n\n",
		s.Name, approach, cfg.Horizon, cfg.BER)
	tbl := report.NewTable("topology", "switches", "planes", "worst e2e bound",
		"observed worst", "delivered", "redundant", "discarded", "corrupted", "analytic misses", "sound")
	var degraded []string
	for _, ent := range entries {
		topo := ent.topo
		// One Scenario per entry so redundant architectures get the
		// skew-aware first-copy bound, exactly as every other pipeline.
		sc := &core.Scenario{Name: ent.key, Set: set, Net: topo, Sim: cfg}
		bounds, err := sc.Analyze(approach)
		if err != nil {
			return fmt.Errorf("%s: %w", ent.key, err)
		}
		sim, err := sc.Simulate()
		if err != nil {
			return fmt.Errorf("%s: %w", ent.key, err)
		}
		boundWorst, observedWorst := simtime.Duration(0), simtime.Duration(0)
		sound := true
		for _, pb := range bounds.Flows {
			if pb.EndToEnd > boundWorst {
				boundWorst = pb.EndToEnd
			}
			observed := sim.Flows[pb.Spec.Msg.Name].Latency.Max()
			if observed > observedWorst {
				observedWorst = observed
			}
			if observed > pb.EndToEnd {
				sound = false
			}
		}
		tbl.AddRow(ent.key, topo.Switches, topo.PlaneCount(), boundWorst, observedWorst,
			sim.TotalDelivered(), sim.Redundant, sim.Discarded, sim.Corrupted, bounds.Violations, mark(sound))
		// The degraded bound needs a plane left to lose: a scenario already
		// running on its last surviving plane has no one-more-failure mode.
		if topo.Redundant() && topo.SurvivingPlanes() > 1 {
			deg, err := sc.AnalyzeDegraded(approach)
			switch {
			case errors.Is(err, analysis.ErrUnstable):
				// The degraded bound is legitimately infinite (some single
				// failure leaves only over-subscribed planes) — that is a
				// verdict to report, not a reason to lose the table.
				degraded = append(degraded, fmt.Sprintf(
					"degraded %s (any one plane failed): unbounded — a failure leaves only over-subscribed planes",
					ent.key))
			case err != nil:
				return fmt.Errorf("%s: degraded: %w", ent.key, err)
			default:
				degWorst := simtime.Duration(0)
				for _, pb := range deg.Flows {
					if pb.EndToEnd > degWorst {
						degWorst = pb.EndToEnd
					}
				}
				degraded = append(degraded, fmt.Sprintf(
					"degraded %s (any one plane failed): worst e2e bound %v, analytic misses %d",
					ent.key, degWorst, deg.Violations))
			}
		}
	}
	if _, err := tbl.WriteTo(stdout); err != nil {
		return err
	}
	for _, line := range degraded {
		fmt.Fprintln(stdout, line)
	}
	return nil
}

// topoGrid runs the topology × rate × load cross-validation.
func topoGrid(fams []topology.Family, approach analysis.Approach, horizon time.Duration, seed uint64, ber float64, parallel, reps int) error {
	cfg := core.DefaultSimConfig(approach)
	cfg.Horizon = simtime.FromStd(horizon)
	cfg.BER = ber
	// As in cmdSweep: replicated runs sample random phases/gaps, a single
	// run checks the deterministic critical instant.
	if reps > 1 {
		cfg.Mode = traffic.RandomGaps
		cfg.MeanSlack = core.DefaultMeanSlack
		cfg.AlignPhases = false
	}
	points := core.TopoGrid(fams,
		[]simtime.Rate{10 * simtime.Mbps, 100 * simtime.Mbps},
		[]int{0, 8})
	opts := core.SweepOptions{Workers: parallel, Reps: reps, Seed: seed}
	cells, err := core.RunTopoGrid(points, cfg, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "topology × rate × load cross-validation (M3): bounds vs %d×%v simulation under %v\n",
		reps, cfg.Horizon, approach)
	tbl := report.NewTable("topology", "planes", "link rate", "extra RTs", "connections",
		"worst e2e bound", "observed worst", "observed p99", "delivered", "redundant", "discarded",
		"analytic misses", "worst backlog", "sound")
	for _, c := range cells {
		worstBacklog := "-"
		if c.Backlog.WorstKey != "" {
			worstBacklog = fmt.Sprintf("%s %d/%d B", c.Backlog.WorstKey,
				c.Backlog.WorstObserved.ByteCount(), c.Backlog.WorstBound.ByteCount())
		}
		tbl.AddRow(c.Topology, c.Planes, c.Point.Rate, c.Point.ExtraRTs, c.Connections,
			c.BoundWorst, c.ObservedWorst, c.ObservedP99, c.Delivered, c.Redundant, c.Discarded,
			c.Violations, worstBacklog, mark(c.Sound()))
	}
	if _, err := tbl.WriteTo(stdout); err != nil {
		return err
	}
	unsound := 0
	for _, c := range cells {
		if !c.Sound() {
			unsound++
		}
	}
	fmt.Fprintf(stdout, "cells with bound violations: %d of %d\n", unsound, len(cells))
	return nil
}

// selectFamilies resolves the -topologies flag (empty = every family).
func selectFamilies(keys string) ([]topology.Family, error) {
	if keys == "" {
		return topology.Families(), nil
	}
	var out []topology.Family
	for _, key := range strings.Split(keys, ",") {
		fam, err := topology.FamilyByKey(strings.TrimSpace(key))
		if err != nil {
			return nil, err
		}
		out = append(out, fam)
	}
	return out, nil
}
