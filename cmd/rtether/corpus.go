package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/scenariogen"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// cmdCorpus replays the committed survivor corpus — the scenario files
// the generative fuzzer found most interesting — through every soundness
// invariant: canonical round-trip, latency bounds, backlog bounds, copy
// conservation, and optionally the reference oracle. The table is
// bit-identical at any -parallel value (the sweep engine preserves input
// order), so CI can diff two runs to prove the replay deterministic.
func cmdCorpus(args []string) error {
	fs := newFlagSet("corpus")
	dir := fs.String("dir", "testdata/corpus", "directory of corpus scenario JSON files")
	parallel := fs.Int("parallel", 1, "concurrent replays (0 = all CPUs)")
	oracle := fs.Bool("oracle", false, "additionally hold clean-medium scenarios to the reference oracle")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	entries, err := os.ReadDir(*dir)
	if err != nil {
		return fmt.Errorf("corpus directory: %w", err)
	}
	var files []string
	for _, e := range entries { // ReadDir sorts by name: deterministic order
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			files = append(files, filepath.Join(*dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return fmt.Errorf("no scenario files in %s", *dir)
	}

	type replay struct {
		file    string
		verdict *scenariogen.Verdict
	}
	results, err := sweep.RunIndexed(files, *parallel, func(_ int, path string) (replay, error) {
		cfg, err := topology.LoadFile(path)
		if err != nil {
			return replay{}, fmt.Errorf("%s: %w", path, err)
		}
		check := scenariogen.Check
		if *oracle {
			check = scenariogen.CheckStrict
		}
		v, err := check(cfg)
		if err != nil {
			return replay{}, fmt.Errorf("%s: %w", path, err)
		}
		return replay{file: filepath.Base(path), verdict: v}, nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%-28s %-14s %5s %8s %9s %8s %9s  %s\n",
		"scenario", "hash", "flows", "worst", "delivered", "dropped", "discarded", "verdict")
	violations := 0
	for _, r := range results {
		v := r.verdict
		status := "ok"
		switch {
		case !v.Sound():
			violations += len(v.Violations)
			status = "VIOLATION: " + strings.Join(v.Violations, "; ")
		case v.Unstable:
			status = "ok (unstable: bounds vacuous)"
		}
		fmt.Fprintf(stdout, "%-28s %-14s %5d %8.3f %9d %8d %9d  %s\n",
			r.file, v.Hash[:12], v.Flows, v.WorstRatio, v.Delivered, v.Dropped, v.Discarded, status)
	}
	fmt.Fprintf(stdout, "\n%d scenarios replayed, %d violations\n", len(results), violations)
	if violations > 0 {
		return fmt.Errorf("%d soundness violations across %d scenarios", violations, len(results))
	}
	return nil
}
