package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCapture drives run() as a process would, with stdout, stderr and
// stdin swapped for buffers.
func runCapture(t *testing.T, in string, argv ...string) (code int, out, diag string) {
	t.Helper()
	var ob, eb strings.Builder
	oldOut, oldErr, oldIn := stdout, stderr, stdin
	stdout, stderr = &ob, &eb
	if in != "" {
		stdin = strings.NewReader(in)
	} else {
		stdin = io.LimitReader(nil, 0)
	}
	defer func() { stdout, stderr, stdin = oldOut, oldErr, oldIn }()
	return run(argv), ob.String(), eb.String()
}

// TestRunExitCodes pins the exit-code contract of the CLI: 0 on success
// and explicit help, 1 when a command fails (unreadable, malformed or
// invalid -config), 2 on usage errors (missing or unknown subcommand,
// bad flags) — each with its diagnostic on stderr, never stdout.
func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	malformed := write("malformed.json", `{"messages": [,]}`)
	invalid := write("invalid.json", `{}`) // well-formed JSON, fails scenario validation
	unknownField := write("unknown.json", `{"bogus_field": 1}`)
	emptyDir := filepath.Join(dir, "empty-corpus")
	if err := os.MkdirAll(emptyDir, 0o755); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name       string
		argv       []string
		stdin      string
		wantCode   int
		wantStderr string // substring; "" means stderr must be empty
	}{
		{name: "no command", argv: nil, wantCode: exitUsage, wantStderr: "commands:"},
		{name: "unknown command", argv: []string{"bogus"}, wantCode: exitUsage, wantStderr: `unknown command "bogus"`},
		{name: "help", argv: []string{"help"}, wantCode: exitOK, wantStderr: "commands:"},
		{name: "bad flag", argv: []string{"analyze", "-no-such-flag"}, wantCode: exitUsage, wantStderr: "flag provided but not defined"},
		{name: "flag help", argv: []string{"analyze", "-h"}, wantCode: exitOK, wantStderr: "Usage of analyze"},
		{name: "missing config", argv: []string{"analyze", "-config", filepath.Join(dir, "nope.json")}, wantCode: exitErr, wantStderr: "rtether analyze:"},
		{name: "malformed config", argv: []string{"analyze", "-config", malformed}, wantCode: exitErr, wantStderr: "rtether analyze:"},
		{name: "invalid config", argv: []string{"analyze", "-config", invalid}, wantCode: exitErr, wantStderr: "non-positive link rate"},
		{name: "unknown config field", argv: []string{"analyze", "-config", unknownField}, wantCode: exitErr, wantStderr: `unknown field "bogus_field"`},
		{name: "malformed stdin config", argv: []string{"analyze", "-config", "-"}, stdin: "{", wantCode: exitErr, wantStderr: "rtether analyze:"},
		{name: "scenario success", argv: []string{"scenario"}, wantCode: exitOK, wantStderr: ""},
		{name: "analyze success", argv: []string{"analyze"}, wantCode: exitOK, wantStderr: ""},
		{name: "serve bad flag", argv: []string{"serve", "-no-such-flag"}, wantCode: exitUsage, wantStderr: "flag provided but not defined"},
		{name: "serve help", argv: []string{"serve", "-h"}, wantCode: exitOK, wantStderr: "Usage of serve"},
		{name: "serve stray arg", argv: []string{"serve", "stray"}, wantCode: exitUsage, wantStderr: `unexpected argument "stray"`},
		{name: "corpus bad flag", argv: []string{"corpus", "-no-such-flag"}, wantCode: exitUsage, wantStderr: "flag provided but not defined"},
		{name: "corpus help", argv: []string{"corpus", "-h"}, wantCode: exitOK, wantStderr: "Usage of corpus"},
		{name: "corpus missing dir", argv: []string{"corpus", "-dir", filepath.Join(dir, "no-corpus")}, wantCode: exitErr, wantStderr: "rtether corpus:"},
		{name: "corpus empty dir", argv: []string{"corpus", "-dir", emptyDir}, wantCode: exitErr, wantStderr: "no scenario files"},
		// The test binary runs in cmd/rtether; the committed corpus sits
		// at the repository root.
		{name: "corpus success", argv: []string{"corpus", "-dir", "../../testdata/corpus"}, wantCode: exitOK, wantStderr: ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			code, out, diag := runCapture(t, tc.stdin, tc.argv...)
			if code != tc.wantCode {
				t.Fatalf("run(%q) = %d, want %d (stderr: %s)", tc.argv, code, tc.wantCode, diag)
			}
			if tc.wantStderr == "" {
				if diag != "" {
					t.Errorf("run(%q) wrote to stderr on success: %s", tc.argv, diag)
				}
			} else if !strings.Contains(diag, tc.wantStderr) {
				t.Errorf("run(%q) stderr = %q, want substring %q", tc.argv, diag, tc.wantStderr)
			}
			if code != exitOK && tc.name != "help" && tc.name != "flag help" && out != "" && strings.Contains(out, "error") {
				t.Errorf("run(%q) leaked a diagnostic to stdout: %q", tc.argv, out)
			}
		})
	}
}
