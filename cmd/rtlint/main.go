// Command rtlint runs the repository's custom static-analysis suite
// (internal/lint) as a `go vet` tool:
//
//	go build -o bin/rtlint ./cmd/rtlint
//	go vet -vettool=$PWD/bin/rtlint ./...
//
// The suite proves at compile time the invariants the runtime gates check
// empirically: an allocation-free steady-state hot path (hotpathalloc),
// seed-reproducible results (deterministic), pool ownership discipline
// (pooldiscipline), and unit-safe virtual-time arithmetic (simtimeunits).
// CI runs it on every push; the repository must stay diagnostic-free.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() { unitchecker.Main(lint.Analyzers()...) }
