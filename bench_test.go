// Benchmark harness: one bench per figure, table and prose claim of the
// paper's evaluation (see EXPERIMENTS.md for the index), plus micro-benches
// of the hot paths. Each experiment bench reports the reproduced values as
// custom metrics (ms_*) so that `go test -bench=. -benchmem` regenerates
// the paper's rows/series directly in its output.
package repro

import (
	"bytes"
	"fmt"

	"testing"

	"repro/internal/afdx"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/ethernet"
	"repro/internal/milstd1553"
	"repro/internal/netcalc"
	"repro/internal/shaper"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// ---------------------------------------------------------------------------
// F1 — Figure 1: delay bounds of the two approaches on the real-case traffic.
// ---------------------------------------------------------------------------

// BenchmarkFigure1 regenerates Figure 1 and reports the per-class priority
// bounds and the worst FCFS bound in milliseconds.
func BenchmarkFigure1(b *testing.B) {
	set := RealCase()
	cfg := DefaultConfig()
	var fig *Figure1
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = RunFigure1(set, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	worstFCFS := simtime.Duration(0)
	for _, f := range fig.FCFS.Flows {
		if f.EndToEnd > worstFCFS {
			worstFCFS = f.EndToEnd
		}
	}
	b.ReportMetric(fig.Priority.ClassWorst[0].Milliseconds(), "ms_P0")
	b.ReportMetric(fig.Priority.ClassWorst[1].Milliseconds(), "ms_P1")
	b.ReportMetric(fig.Priority.ClassWorst[2].Milliseconds(), "ms_P2")
	b.ReportMetric(fig.Priority.ClassWorst[3].Milliseconds(), "ms_P3")
	b.ReportMetric(worstFCFS.Milliseconds(), "ms_FCFS")
}

// ---------------------------------------------------------------------------
// C1–C3 — the prose claims.
// ---------------------------------------------------------------------------

// BenchmarkClaimC1 reports the FCFS urgent-class bound and the violation
// count: "some real-time constraints are violated" at 10 Mbps.
func BenchmarkClaimC1(b *testing.B) {
	set := RealCase()
	cfg := DefaultConfig()
	var res *Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = SingleHop(set, FCFS, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ClassWorst[P0].Milliseconds(), "ms_P0_bound")
	b.ReportMetric(float64(res.Violations), "violations")
}

// BenchmarkClaimC2 reports the priority urgent-class bound: below 3 ms.
func BenchmarkClaimC2(b *testing.B) {
	set := RealCase()
	cfg := DefaultConfig()
	var res *Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = SingleHop(set, PriorityHandling, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ClassWorst[P0].Milliseconds(), "ms_P0_bound")
	b.ReportMetric(float64(res.Violations), "violations")
}

// BenchmarkClaimC3 reports the periodic-class bounds under both approaches
// at the bottleneck: priority < FCFS.
func BenchmarkClaimC3(b *testing.B) {
	set := RealCase()
	cfg := DefaultConfig()
	var fcfsMC, prioMC simtime.Duration
	for i := 0; i < b.N; i++ {
		fcfs, err := SingleHop(set, FCFS, cfg)
		if err != nil {
			b.Fatal(err)
		}
		prio, err := SingleHop(set, PriorityHandling, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for j, f := range fcfs.Flows {
			if f.Spec.Msg.Dest == traffic.StationMC && f.Spec.Msg.Priority == P1 {
				fcfsMC, prioMC = f.EndToEnd, prio.Flows[j].EndToEnd
				break
			}
		}
	}
	b.ReportMetric(fcfsMC.Milliseconds(), "ms_P1_fcfs")
	b.ReportMetric(prioMC.Milliseconds(), "ms_P1_priority")
}

// ---------------------------------------------------------------------------
// B1 — the MIL-STD-1553B baseline.
// ---------------------------------------------------------------------------

// Benchmark1553Baseline simulates half a second of bus operation per
// iteration and reports the urgent worst case and utilization.
func Benchmark1553Baseline(b *testing.B) {
	set := RealCase()
	var base *Baseline1553
	var err error
	for i := 0; i < b.N; i++ {
		base, err = RunBaseline1553(set, traffic.StationMC, 500*simtime.Millisecond, Serial(1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(base.Flows["ew/threat-warning"].WorstCase.Milliseconds(), "ms_urgent_worst")
	b.ReportMetric(100*base.Utilization, "util_pct")
}

// ---------------------------------------------------------------------------
// S1 — simulation vs bounds.
// ---------------------------------------------------------------------------

// BenchmarkSimFigure1 runs the full network simulation (priority approach)
// and reports observed worst latencies per class.
func BenchmarkSimFigure1(b *testing.B) {
	set := RealCase()
	cfg := DefaultSimConfig(PriorityHandling)
	cfg.Horizon = 500 * simtime.Millisecond
	var res *SimResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Simulate(set, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ClassWorst[0].Milliseconds(), "ms_P0_observed")
	b.ReportMetric(res.ClassWorst[1].Milliseconds(), "ms_P1_observed")
	b.ReportMetric(float64(res.Events)/float64(b.Elapsed().Seconds()+1e-12)/1e6*float64(b.N), "Mevents_per_s")
}

// BenchmarkSimFCFS is the FCFS counterpart of BenchmarkSimFigure1.
func BenchmarkSimFCFS(b *testing.B) {
	set := RealCase()
	cfg := DefaultSimConfig(FCFS)
	cfg.Horizon = 500 * simtime.Millisecond
	var res *SimResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Simulate(set, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ClassWorst[0].Milliseconds(), "ms_P0_observed")
}

// ---------------------------------------------------------------------------
// A1/A2 — ablations.
// ---------------------------------------------------------------------------

// BenchmarkRateSweep reports the FCFS urgent bound at 10/100/1000 Mbps:
// the "higher rate is not sufficient" series.
func BenchmarkRateSweep(b *testing.B) {
	set := RealCase()
	rates := []simtime.Rate{10 * simtime.Mbps, 100 * simtime.Mbps, simtime.Gbps}
	var points []core.RatePoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = core.RunRateSweep(set, rates, DefaultConfig(), Serial(1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].FCFSUrgent.Milliseconds(), "ms_fcfs_10M")
	b.ReportMetric(points[1].FCFSUrgent.Milliseconds(), "ms_fcfs_100M")
	b.ReportMetric(points[2].FCFSUrgent.Milliseconds(), "ms_fcfs_1G")
}

// BenchmarkLoadSweep reports the urgent bounds as the station count grows.
func BenchmarkLoadSweep(b *testing.B) {
	var points []core.LoadPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = core.RunLoadSweep([]int{0, 8, 16}, DefaultConfig(), Serial(1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].FCFSUrgent.Milliseconds(), "ms_fcfs_0rt")
	b.ReportMetric(points[2].FCFSUrgent.Milliseconds(), "ms_fcfs_16rt")
	b.ReportMetric(points[2].PriorityUrgent.Milliseconds(), "ms_prio_16rt")
}

// ---------------------------------------------------------------------------
// J1 — jitter bounds (the paper's future work).
// ---------------------------------------------------------------------------

// BenchmarkJitter reports worst-case jitter of the urgent class under both
// approaches.
func BenchmarkJitter(b *testing.B) {
	set := RealCase()
	cfg := DefaultConfig()
	var fcfsJ, prioJ simtime.Duration
	for i := 0; i < b.N; i++ {
		fcfs, err := SingleHop(set, FCFS, cfg)
		if err != nil {
			b.Fatal(err)
		}
		prio, err := SingleHop(set, PriorityHandling, cfg)
		if err != nil {
			b.Fatal(err)
		}
		fcfsJ, prioJ = 0, 0
		for j, f := range fcfs.Flows {
			if f.Spec.Msg.Priority != P0 {
				continue
			}
			if f.Jitter > fcfsJ {
				fcfsJ = f.Jitter
			}
			if prio.Flows[j].Jitter > prioJ {
				prioJ = prio.Flows[j].Jitter
			}
		}
	}
	b.ReportMetric(fcfsJ.Milliseconds(), "ms_jitter_fcfs")
	b.ReportMetric(prioJ.Milliseconds(), "ms_jitter_priority")
}

// ---------------------------------------------------------------------------
// A3–A5 — further ablations, and the AFDX profile comparison (A6).
// ---------------------------------------------------------------------------

// BenchmarkBurstAblation reports the bottleneck FCFS bound as the shaper
// bucket grows from the paper's one message to four: the bound scales
// linearly in the burst — why the paper pins bᵢ to one message.
func BenchmarkBurstAblation(b *testing.B) {
	set := RealCase()
	cfg := DefaultConfig()
	var points []analysis.BurstPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = analysis.RunBurstAblation(set, cfg, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].Bound.Milliseconds(), "ms_burst1")
	b.ReportMetric(points[1].Bound.Milliseconds(), "ms_burst2")
	b.ReportMetric(points[2].Bound.Milliseconds(), "ms_burst4")
}

// BenchmarkStaircaseTightness compares the exact staircase bound of the
// bottleneck against the token-bucket hull the paper uses.
func BenchmarkStaircaseTightness(b *testing.B) {
	set := RealCase()
	cfg := DefaultConfig()
	var exact simtime.Duration
	var err error
	for i := 0; i < b.N; i++ {
		exact, err = analysis.StaircaseBound(set, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	specs := analysis.Specs(set, cfg)
	b.ReportMetric(exact.Milliseconds(), "ms_staircase")
	hullSpecs := map[string][]analysis.FlowSpec{}
	for _, f := range specs {
		hullSpecs[f.Msg.Dest] = append(hullSpecs[f.Msg.Dest], f)
	}
	hull, err := analysis.FCFSBound(hullSpecs[traffic.StationMC], cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(hull.Milliseconds(), "ms_hull")
}

// BenchmarkCapacityPlanning reports the minimal link rate per approach:
// the bandwidth price of not using priorities.
func BenchmarkCapacityPlanning(b *testing.B) {
	set := RealCase()
	cfg := DefaultConfig()
	var fcfs, prio simtime.Rate
	var err error
	for i := 0; i < b.N; i++ {
		fcfs, err = analysis.MinimalRate(set, FCFS, cfg, simtime.Mbps, simtime.Gbps, 100*simtime.Kbps)
		if err != nil {
			b.Fatal(err)
		}
		prio, err = analysis.MinimalRate(set, PriorityHandling, cfg, simtime.Mbps, simtime.Gbps, 100*simtime.Kbps)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fcfs)/1e6, "Mbps_fcfs_min")
	b.ReportMetric(float64(prio)/1e6, "Mbps_priority_min")
}

// BenchmarkAFDXProfile reports the urgent bound under the civil 2-class
// AFDX profile against the paper's military 4-class one.
func BenchmarkAFDXProfile(b *testing.B) {
	set := RealCase()
	cfg := DefaultConfig()
	var cmp []afdx.Comparison
	var err error
	for i := 0; i < b.N; i++ {
		cmp, err = afdx.CompareBounds(set, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var civil, military simtime.Duration
	for i, m := range set.Messages {
		if m.Priority == P0 && m.Dest == traffic.StationMC {
			civil, military = cmp[i].Civil, cmp[i].Military
			break
		}
	}
	b.ReportMetric(military.Milliseconds(), "ms_military_P0")
	b.ReportMetric(civil.Milliseconds(), "ms_civil_P0")
}

// BenchmarkBabbler (R1) reports the worst urgent latency with a 400×
// babbling station, shaped vs unshaped — the containment the paper's
// traffic control buys.
func BenchmarkBabbler(b *testing.B) {
	set := RealCase()
	var shaped, unshaped simtime.Duration
	for i := 0; i < b.N; i++ {
		cfg := DefaultSimConfig(FCFS)
		cfg.Horizon = 500 * simtime.Millisecond
		cfg.Babbler = "nav/attitude"
		cfg.BabbleFactor = 400
		res, err := Simulate(set, cfg)
		if err != nil {
			b.Fatal(err)
		}
		shaped = res.ClassWorst[P0]
		cfg.BypassShapers = true
		res, err = Simulate(set, cfg)
		if err != nil {
			b.Fatal(err)
		}
		unshaped = res.ClassWorst[P0]
	}
	b.ReportMetric(shaped.Milliseconds(), "ms_P0_shaped")
	b.ReportMetric(unshaped.Milliseconds(), "ms_P0_unshaped")
}

// BenchmarkSchedulerComparison (A7/A8) reports the urgent bound at the
// bottleneck under four disciplines: FCFS, the paper's non-preemptive
// strict priority, idealized preemptive priority (TSN express), and
// Deficit Round Robin.
func BenchmarkSchedulerComparison(b *testing.B) {
	set := RealCase()
	cfg := DefaultConfig()
	var cmp *analysis.SchedulerComparison
	var err error
	for i := 0; i < b.N; i++ {
		cmp, err = analysis.CompareSchedulers(set, cfg, analysis.EqualDRRQuanta())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.FCFS.Milliseconds(), "ms_fcfs")
	b.ReportMetric(cmp.StrictPriority.Milliseconds(), "ms_strict")
	b.ReportMetric(cmp.PreemptivePriority.Milliseconds(), "ms_preemptive")
	if cmp.DRRStable {
		b.ReportMetric(cmp.DeficitRoundRobin.Milliseconds(), "ms_drr")
	}
}

// ---------------------------------------------------------------------------
// M1 — the cascaded two-switch architecture (extension).
// ---------------------------------------------------------------------------

// BenchmarkTwoSwitch reports the urgent bound across the trunk and the
// worst observed latency from the two-switch simulation.
func BenchmarkTwoSwitch(b *testing.B) {
	set := RealCase()
	simCfg := DefaultSimConfig(PriorityHandling)
	simCfg.Horizon = 500 * simtime.Millisecond
	var bounds *Result
	var sim *SimResult
	var err error
	for i := 0; i < b.N; i++ {
		bounds, err = analysis.TwoSwitchEndToEnd(set, analysis.Priority, simCfg.AnalysisConfig(), analysis.SplitByName)
		if err != nil {
			b.Fatal(err)
		}
		sim, err = core.SimulateTwoSwitch(set, simCfg, analysis.SplitByName)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bounds.ClassWorst[P0].Milliseconds(), "ms_P0_bound")
	b.ReportMetric(sim.ClassWorst[P0].Milliseconds(), "ms_P0_observed")
	b.ReportMetric(float64(bounds.Violations), "violations")
}

// BenchmarkTreeTopology (M2) reports the urgent bound on a three-switch
// line (front / mid / aft fuselage), the deepest realistic cascade.
func BenchmarkTreeTopology(b *testing.B) {
	set := RealCase()
	tree := &analysis.Tree{
		Switches:      3,
		Links:         [][2]int{{0, 1}, {1, 2}},
		StationSwitch: map[string]int{},
	}
	for _, st := range set.Stations() {
		switch st {
		case traffic.StationMC, traffic.StationDisplay:
			tree.StationSwitch[st] = 0
		case traffic.StationNav, traffic.StationADC, traffic.StationRadar, traffic.StationEW:
			tree.StationSwitch[st] = 1
		default:
			tree.StationSwitch[st] = 2
		}
	}
	cfg := DefaultConfig()
	var res *Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = analysis.TreeEndToEnd(set, analysis.Priority, cfg, tree)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ClassWorst[P0].Milliseconds(), "ms_P0_bound")
	b.ReportMetric(float64(res.Violations), "violations")
}

// ---------------------------------------------------------------------------
// M3 — the unified engine's new scenario families (daisy-chain backbone and
// dual-redundant network).
// ---------------------------------------------------------------------------

// BenchmarkChainTopology simulates the real case over a four-switch
// daisy-chain backbone on the unified engine and reports the worst urgent
// latency against the tree-composed bound.
func BenchmarkChainTopology(b *testing.B) {
	set := RealCase()
	chain := ChainNetwork(set.Stations(), 4)
	cfg := DefaultSimConfig(PriorityHandling)
	cfg.Horizon = 250 * simtime.Millisecond
	bounds, err := TreeEndToEnd(set, PriorityHandling, DefaultConfig(), chain.Tree())
	if err != nil {
		b.Fatal(err)
	}
	var res *SimResult
	for i := 0; i < b.N; i++ {
		res, err = SimulateNetwork(set, cfg, chain)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bounds.ClassWorst[P0].Milliseconds(), "ms_P0_bound")
	b.ReportMetric(res.ClassWorst[P0].Milliseconds(), "ms_P0_observed")
	b.ReportMetric(float64(bounds.Violations), "violations")
}

// BenchmarkDualNetwork simulates the dual-redundant star under a lossy
// medium and reports the delivery gain redundancy buys over one plane.
func BenchmarkDualNetwork(b *testing.B) {
	set := RealCase()
	cfg := DefaultSimConfig(PriorityHandling)
	cfg.Horizon = 250 * simtime.Millisecond
	cfg.BER = 1e-5
	dual := RedundantNetwork(StarNetwork(set.Stations()), 2)
	var single, both *SimResult
	var err error
	for i := 0; i < b.N; i++ {
		single, err = Simulate(set, cfg)
		if err != nil {
			b.Fatal(err)
		}
		both, err = SimulateNetwork(set, cfg, dual)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(single.TotalDelivered()), "delivered_single")
	b.ReportMetric(float64(both.TotalDelivered()), "delivered_dual")
	b.ReportMetric(float64(both.Redundant), "redundant_copies")
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the substrate hot paths.
// ---------------------------------------------------------------------------

// BenchmarkNetcalcHorizontalDeviation measures the core bound computation.
func BenchmarkNetcalcHorizontalDeviation(b *testing.B) {
	specs := analysis.Specs(RealCase(), DefaultConfig())
	agg := netcalc.Zero()
	for _, f := range specs {
		agg = agg.Add(netcalc.TokenBucket(float64(f.B.Bits()), float64(f.R.BitsPerSecond())))
	}
	beta := netcalc.RateLatency(10e6, 140e-6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netcalc.HorizontalDeviation(agg, beta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDESThroughput measures raw event-loop throughput.
func BenchmarkDESThroughput(b *testing.B) {
	sim := des.New(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			sim.After(1000, tick)
		}
	}
	sim.At(0, tick)
	b.ResetTimer()
	sim.Run()
}

// BenchmarkShaperSubmit measures the token-bucket release path.
func BenchmarkShaperSubmit(b *testing.B) {
	sim := des.New(1)
	s := shaper.New("bench", sim, 1<<20, simtime.Gbps, func(*ethernet.Frame) {})
	f := &ethernet.Frame{PayloadLen: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit(f)
		sim.RunFor(simtime.Microsecond)
	}
}

// BenchmarkSwitchForwarding measures frames through a 2-station switch.
func BenchmarkSwitchForwarding(b *testing.B) {
	sim := des.New(1)
	sw := ethernet.NewSwitch(sim, ethernet.SwitchConfig{Name: "sw", Kind: ethernet.QueuePriority})
	a := ethernet.NewStation(sim, "a", ethernet.StationAddr(1), sw, 1, simtime.Gbps, 0, ethernet.QueuePriority, 0)
	ethernet.NewStation(sim, "b", ethernet.StationAddr(2), sw, 2, simtime.Gbps, 0, ethernet.QueuePriority, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(&ethernet.Frame{Dst: ethernet.StationAddr(2), Tagged: true, Priority: 7, PayloadLen: 64})
		sim.Run()
	}
}

// BenchmarkFrameMarshal measures the wire codec.
func BenchmarkFrameMarshal(b *testing.B) {
	f := &ethernet.Frame{
		Dst: ethernet.StationAddr(1), Src: ethernet.StationAddr(2),
		Tagged: true, Priority: 7, VLANID: 42,
		Type: ethernet.EtherTypeAvionics, PayloadLen: 64,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

// Benchmark1553MinorFrame measures one simulated second of bus schedule
// execution.
func Benchmark1553MinorFrame(b *testing.B) {
	set := RealCase()
	schedule, err := milstd1553.Build(set, traffic.StationMC)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := des.New(1)
		bus := milstd1553.NewBus(sim, schedule)
		traffic.Start(sim, set, traffic.SourceConfig{Mode: traffic.Greedy, AlignPhases: true}, bus.Release)
		bus.Start()
		sim.RunFor(simtime.Second)
	}
}

// ---------------------------------------------------------------------------
// The scenario-sweep engine.
// ---------------------------------------------------------------------------

// BenchmarkScenarioLoad measures the declarative config path: parse,
// validate and route-precompute the real-case dual-redundant scenario
// (94 connections, network + sim sections, per-link overrides) from its
// JSON bytes — the fixed cost every `rtether ... -config` invocation and
// every Experiment bind pays before the first simulated nanosecond.
func BenchmarkScenarioLoad(b *testing.B) {
	cfg, err := ScenarioTemplate("dual")
	if err != nil {
		b.Fatal(err)
	}
	// Make it heterogeneous: a fast mission-computer access link, as the
	// migration study would configure.
	cfg.Network.StationRates = map[string]simtime.Rate{"mission-computer": 100 * simtime.Mbps}
	var buf bytes.Buffer
	if err := cfg.Save(&buf); err != nil {
		b.Fatal(err)
	}
	doc := buf.Bytes()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, err := topology.Load(bytes.NewReader(doc))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := NewScenario(loaded); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep runs the rate-sweep grid cross-validation (S3) — 8 cells
// × 4 simulation replications each — under growing worker counts. The
// serial and parallel runs produce bit-identical cells; on a machine with
// ≥ 8 CPUs the workers=8 case completes the same grid ≥ 3× faster than
// workers=1 (on fewer CPUs the speedup is capped by GOMAXPROCS).
func BenchmarkSweep(b *testing.B) {
	grid := core.Grid([]simtime.Rate{10 * simtime.Mbps, 25 * simtime.Mbps,
		50 * simtime.Mbps, 100 * simtime.Mbps}, []int{0, 8})
	cfg := core.DefaultSimConfig(PriorityHandling)
	cfg.Horizon = 100 * simtime.Millisecond
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cells, err := core.RunGrid(grid, cfg, core.SweepOptions{Workers: workers, Reps: 4, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range cells {
					if !c.Sound() {
						b.Fatalf("%v/%d RTs: bound violated", c.Point.Rate, c.Point.ExtraRTs)
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// M10 — incremental analysis: memoized curve algebra + analysis cache.
// ---------------------------------------------------------------------------

// reportHitRates attaches the warm-path hit rates of both memo layers to
// a benchmark, measured as deltas against the post-priming counters.
func reportHitRates(b *testing.B, m0 netcalc.MemoStats, c0 analysis.CacheStats) {
	m1, c1 := netcalc.Stats(), analysis.DefaultCacheStats()
	rate := func(hits, misses uint64) float64 {
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	}
	b.ReportMetric(rate(m1.Hits-m0.Hits, m1.Misses-m0.Misses), "memo-hit-rate")
	b.ReportMetric(rate(c1.Hits-c0.Hits, c1.Misses-c0.Misses), "cache-hit-rate")
}

// topoGridBenchPoints is the CLI smoke grid (`rtether topo -grid`): every
// architecture family × {10, 100 Mbps} × {0, 8 extra RTs}.
func topoGridBenchPoints() []core.TopoPoint {
	return core.TopoGrid(topology.Families(),
		[]simtime.Rate{10 * simtime.Mbps, 100 * simtime.Mbps},
		[]int{0, 8})
}

// BenchmarkTopoGrid measures the full topology × rate × load
// cross-validation with the memoized layers cold (both caches emptied
// every iteration) versus warm (primed once) — the before/after pair of
// EXPERIMENTS.md M10. The cells must be identical either way; the cold
// case bounds the regression a cache-less run would see.
func BenchmarkTopoGrid(b *testing.B) {
	points := topoGridBenchPoints()
	cfg := core.DefaultSimConfig(PriorityHandling)
	cfg.Horizon = 20 * simtime.Millisecond
	opts := core.SweepOptions{Workers: 1, Reps: 1, Seed: 1}
	run := func(b *testing.B) {
		cells, err := core.RunTopoGrid(points, cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != len(points) {
			b.Fatalf("got %d cells, want %d", len(cells), len(points))
		}
	}
	b.Run("off", func(b *testing.B) {
		prevMemo := netcalc.SetMemoEnabled(false)
		prevCache := analysis.SetCacheEnabled(false)
		defer func() {
			netcalc.SetMemoEnabled(prevMemo)
			analysis.SetCacheEnabled(prevCache)
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b)
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			netcalc.ResetMemo()
			analysis.ResetDefaultCache()
			run(b)
		}
		b.StopTimer()
		// The per-iteration resets zero both counter sets, so the live
		// counters are exactly the last pass's single-grid hit rates.
		reportHitRates(b, netcalc.MemoStats{}, analysis.CacheStats{})
	})
	b.Run("warm", func(b *testing.B) {
		netcalc.ResetMemo()
		analysis.ResetDefaultCache()
		run(b) // prime
		m0, c0 := netcalc.Stats(), analysis.DefaultCacheStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b)
		}
		b.StopTimer()
		reportHitRates(b, m0, c0)
	})
}

// BenchmarkAnalysisGrid measures the pure analysis cost of a 30×30
// (rate × load) grid over the 4-switch chain architecture — the
// parameter-space shape ROADMAP item 2 targets, with no simulation time
// diluting the comparison. Cold empties both memo layers every
// iteration; warm reuses them across cells and iterations.
func BenchmarkAnalysisGrid(b *testing.B) {
	rates := make([]simtime.Rate, 30)
	for i := range rates {
		rates[i] = simtime.Rate(10+3*i) * simtime.Mbps
	}
	loads := make([]int, 30)
	for i := range loads {
		loads[i] = i
	}
	// One workload and tree per load level; rate only changes the config.
	sets := make([]*traffic.Set, len(loads))
	trees := make([]*analysis.Tree, len(loads))
	for i, l := range loads {
		sets[i] = traffic.RealCaseWith(l)
		tr := &analysis.Tree{Switches: 4, Links: [][2]int{{0, 1}, {1, 2}, {2, 3}},
			StationSwitch: map[string]int{}}
		for j, s := range sets[i].Stations() {
			tr.StationSwitch[s] = j % 4
		}
		trees[i] = tr
	}
	run := func(b *testing.B) {
		for _, r := range rates {
			cfg := analysis.DefaultConfig()
			cfg.LinkRate = r
			for i := range loads {
				if _, err := analysis.TreeEndToEnd(sets[i], PriorityHandling, cfg, trees[i]); err != nil {
					b.Fatal(err)
				}
				if _, err := analysis.EdgeBacklogs(sets[i], cfg, trees[i]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		prevMemo := netcalc.SetMemoEnabled(false)
		prevCache := analysis.SetCacheEnabled(false)
		defer func() {
			netcalc.SetMemoEnabled(prevMemo)
			analysis.SetCacheEnabled(prevCache)
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b)
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			netcalc.ResetMemo()
			analysis.ResetDefaultCache()
			run(b)
		}
		b.StopTimer()
		// The per-iteration resets zero both counter sets, so the live
		// counters are exactly the last pass's single-grid hit rates.
		reportHitRates(b, netcalc.MemoStats{}, analysis.CacheStats{})
	})
	b.Run("warm", func(b *testing.B) {
		netcalc.ResetMemo()
		analysis.ResetDefaultCache()
		run(b) // prime
		m0, c0 := netcalc.Stats(), analysis.DefaultCacheStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b)
		}
		b.StopTimer()
		reportHitRates(b, m0, c0)
	})
}
