// Package repro is the public façade of the reproduction of
//
//	A. Mifdaoui, F. Frances, C. Fraboul,
//	"Real-Time Communication over Switched Ethernet for Military
//	Applications", CoNEXT 2005 (student workshop).
//
// The primary API is the Scenario: one serializable value — workload,
// network architecture (with per-link rate and propagation overrides,
// redundant planes), analysis parameters and simulation parameters — that
// drives every pipeline. Load one from a JSON file (LoadScenario), bind a
// declarative config (NewScenario), or wrap a workload on the paper's star
// (StarScenario), then call its methods:
//
//	s, _ := repro.LoadScenario("scenario.json")
//	bounds, _ := s.Analyze(repro.PriorityHandling) // tree-composed e2e bounds
//	sim, _ := s.Simulate()                         // DES on the unified engine
//	v, _ := s.Validate(repro.Serial(1))            // bounds vs simulation
//
// Parameter-space studies build on the generic Experiment runner, which
// binds every point to a Scenario and cross-validates bounds against
// Monte-Carlo simulation replications on the parallel sweep engine.
//
// The package additionally re-exports the underlying pieces:
//
//   - workload modelling: Message, Set, the four 802.1p priority classes,
//     and the built-in real-case military catalog (RealCase);
//   - the paper's analysis: FCFS and strict-priority delay bounds per
//     multiplexer, per-connection single-hop (paper-faithful) and
//     compositional end-to-end network analyses, backlog and jitter
//     bounds;
//   - discrete-event simulation of arbitrary switch-tree networks
//     (shapers, multiplexers, store-and-forward switches, redundant
//     planes) and of the MIL-STD-1553B baseline bus;
//   - the experiment drivers behind every figure, table and claim in
//     EXPERIMENTS.md.
//
// See examples/ for runnable entry points and cmd/rtether for the CLI.
package repro

import (
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Re-exported workload types.
type (
	// Message is one avionics connection: kind, period, payload, deadline.
	Message = traffic.Message
	// Set is a workload of messages.
	Set = traffic.Set
	// Priority is an 802.1p class, P0 (urgent) through P3 (background).
	Priority = traffic.Priority
	// Kind distinguishes periodic from sporadic connections.
	Kind = traffic.Kind
)

// Re-exported analysis types.
type (
	// Approach selects FCFS or strict-priority multiplexing.
	Approach = analysis.Approach
	// AnalysisConfig fixes C, t_techno and framing.
	AnalysisConfig = analysis.Config
	// Result is a full network analysis.
	Result = analysis.Result
	// PathBound is the analysis outcome for one connection.
	PathBound = analysis.PathBound
	// FlowSpec is a connection reduced to its (bᵢ, rᵢ) shape.
	FlowSpec = analysis.FlowSpec
	// EdgeBacklog is the backlog bound of one directed edge's queue.
	EdgeBacklog = analysis.EdgeBacklog
	// NetworkBacklogs is the per-plane buffer dimensioning of a network
	// (Scenario.Backlogs); its Capacities feed the sim section's
	// queue_capacities_bytes and SimConfig.QueueCapacities.
	NetworkBacklogs = core.NetworkBacklogs
	// BacklogVerdict summarizes observed queue high-water marks against
	// the per-edge backlog bounds.
	BacklogVerdict = core.BacklogVerdict
)

// Scenario is the single currency of the system: one configured avionics
// network — workload, architecture, analysis and simulation parameters —
// whose methods (Analyze, Simulate, Validate, Sweep, Baseline) drive every
// pipeline. It round-trips losslessly to the JSON scenario format.
type Scenario = core.Scenario

// ScenarioConfig is the declarative JSON form of a scenario, including
// the optional network section (switches, trunks, station placement,
// redundant planes, per-link rate/propagation-delay overrides) and sim
// section (horizon, seed, source mode, BER, queue capacity, …).
type ScenarioConfig = topology.Config

// Experiment is the generic cross-validation runner behind every grid and
// replication driver: each point binds to a Scenario, bounds are computed
// once, replications run on the parallel sweep engine, and a Cell function
// folds both into the experiment's row type.
type Experiment[P, C any] = core.Experiment[P, C]

// LoadScenario reads, validates and binds a scenario JSON file.
func LoadScenario(path string) (*Scenario, error) { return core.LoadScenario(path) }

// NewScenario binds a declarative scenario config into a runnable
// Scenario: workload and network validated, routing precomputed, sim
// section folded over the paper-matched defaults.
func NewScenario(cfg *ScenarioConfig) (*Scenario, error) { return core.NewScenario(cfg) }

// StarScenario wraps a bare workload and simulation config as a Scenario
// on the paper's star architecture.
func StarScenario(set *Set, cfg SimConfig) *Scenario { return core.StarScenario(set, cfg) }

// DefaultScenarioConfig returns the built-in real-case scenario document.
func DefaultScenarioConfig() *ScenarioConfig { return topology.Default() }

// ScenarioTemplate returns the real-case scenario with the network section
// filled in from a built-in architecture family — a starting point for
// custom architectures.
func ScenarioTemplate(familyKey string) (*ScenarioConfig, error) {
	return topology.Template(familyKey)
}

// Re-exported simulation and experiment types.
type (
	// SimConfig parameterizes a simulation run.
	SimConfig = core.SimConfig
	// SimResult is a simulation outcome.
	SimResult = core.SimResult
	// Figure1 holds the paper's Figure 1 data.
	Figure1 = core.Figure1
	// Validation compares bounds with simulation (experiment S1).
	Validation = core.Validation
	// Baseline1553 is the legacy-bus comparison (experiment B1).
	Baseline1553 = core.Baseline1553
	// SweepOptions configures the parallel scenario-sweep engine
	// (workers, Monte-Carlo replications, root seed).
	SweepOptions = core.SweepOptions
	// GridPoint is one rates × loads cross-validation cell coordinate.
	GridPoint = core.GridPoint
	// GridCell is one cross-validation cell's aggregated outcome.
	GridCell = core.GridCell
)

// Workload constants and constructors.
const (
	Periodic = traffic.Periodic
	Sporadic = traffic.Sporadic
	P0       = traffic.P0
	P1       = traffic.P1
	P2       = traffic.P2
	P3       = traffic.P3

	// FCFS is approach 1: shaping only.
	FCFS = analysis.FCFS
	// PriorityHandling is approach 2: shaping + 802.1p priorities.
	PriorityHandling = analysis.Priority
)

// RealCase returns the built-in real-case military workload (94
// connections; see internal/traffic/catalog.go for its derivation from
// the paper's stated envelope).
func RealCase() *Set { return traffic.RealCase() }

// RealCaseWith returns the workload scaled by extra generic remote
// terminals (the load ablation's knob).
func RealCaseWith(extraRTs int) *Set { return traffic.RealCaseWith(extraRTs) }

// Classify maps kind and deadline onto the paper's priority classes.
func Classify(kind Kind, deadline simtime.Duration) Priority {
	return traffic.Classify(kind, deadline)
}

// DefaultConfig returns the paper's analysis parameters (10 Mbps, 140 µs).
func DefaultConfig() AnalysisConfig { return analysis.DefaultConfig() }

// SingleHop runs the paper-faithful analysis (one multiplexer per
// destination port).
func SingleHop(set *Set, a Approach, cfg AnalysisConfig) (*Result, error) {
	return analysis.SingleHop(set, a, cfg)
}

// EndToEnd runs the compositional two-stage analysis.
func EndToEnd(set *Set, a Approach, cfg AnalysisConfig) (*Result, error) {
	return analysis.EndToEnd(set, a, cfg)
}

// DefaultSimConfig returns paper-matched simulation parameters.
func DefaultSimConfig(a Approach) SimConfig { return core.DefaultSimConfig(a) }

// Simulate runs the star-network discrete-event simulation.
func Simulate(set *Set, cfg SimConfig) (*SimResult, error) { return core.Simulate(set, cfg) }

// RunFigure1 computes the paper's Figure 1 data.
func RunFigure1(set *Set, cfg AnalysisConfig) (*Figure1, error) { return core.RunFigure1(set, cfg) }

// Serial returns the sweep-engine options matching the historical serial
// drivers: one worker, one replication, the given root seed.
func Serial(seed uint64) SweepOptions { return core.Serial(seed) }

// RunValidation checks simulated worst cases against analytic bounds,
// optionally replicated and parallelized via opts.
//
// Deprecated: use StarScenario(set, cfg).Validate(opts), or LoadScenario
// and Scenario.Validate for custom architectures.
func RunValidation(set *Set, cfg SimConfig, opts SweepOptions) (*Validation, error) {
	return core.RunValidation(set, cfg, opts)
}

// RunBaseline1553 runs the workload on the legacy MIL-STD-1553B bus,
// optionally replicated and parallelized via opts.
func RunBaseline1553(set *Set, bc string, horizon simtime.Duration, opts SweepOptions) (*Baseline1553, error) {
	return core.RunBaseline1553(set, bc, horizon, opts)
}

// Grid builds the cross product of link rates × extra remote terminals.
func Grid(rates []simtime.Rate, loads []int) []GridPoint { return core.Grid(rates, loads) }

// RunGrid cross-validates analytic bounds against simulated delays on
// every grid point using the parallel scenario-sweep engine.
//
// Deprecated: RunGrid is a fixed instance of the generic Experiment
// runner over the built-in catalog; new studies should declare their own
// Experiment (or use Scenario.Sweep for a rate sweep of one scenario).
func RunGrid(points []GridPoint, base SimConfig, opts SweepOptions) ([]GridCell, error) {
	return core.RunGrid(points, base, opts)
}

// Tree describes a multi-switch topology (see analysis.Tree).
type Tree = analysis.Tree

// TreeEndToEnd bounds every connection over an arbitrary switch tree.
func TreeEndToEnd(set *Set, a Approach, cfg AnalysisConfig, tree *Tree) (*Result, error) {
	return analysis.TreeEndToEnd(set, a, cfg, tree)
}

// SimulateTree simulates the workload over a switch tree.
//
// Deprecated: describe the tree in a scenario's network section (or build
// a Network) and use Scenario.Simulate — the Scenario API also expresses
// per-link rates, propagation delays and redundant planes.
func SimulateTree(set *Set, cfg SimConfig, tree *Tree) (*SimResult, error) {
	return core.SimulateTree(set, cfg, tree)
}

// Network is the general architecture description behind the unified
// simulator: switches joined into a tree by full-duplex trunks, stations
// placed on switches, and optionally several independent redundant planes
// (the dual-network AFDX shape).
type Network = topology.Network

// TopologyFamily is a topology generator parametric in the station list
// (see topology.Families for the built-in architecture families).
type TopologyFamily = topology.Family

// TopoPoint is one topology × rate × load grid-cell coordinate.
type TopoPoint = core.TopoPoint

// TopoCell is one topology-grid cell's aggregated outcome.
type TopoCell = core.TopoCell

// TopologyFamilies returns the built-in architecture families: star,
// cascade, tree, daisy-chain, and the dual-redundant star.
func TopologyFamilies() []TopologyFamily { return topology.Families() }

// StarNetwork returns the paper's architecture for a station list.
func StarNetwork(stations []string) *Network { return topology.Star(stations) }

// ChainNetwork returns a daisy-chain backbone of the given length.
func ChainNetwork(stations []string, switches int) *Network {
	return topology.Chain(stations, switches)
}

// RedundantNetwork returns base replicated into independent planes (2 =
// dual-redundant; the receiver keeps the first copy of every instance).
func RedundantNetwork(base *Network, planes int) *Network {
	return topology.Redundify(base, planes)
}

// PlaneSpec configures one redundant plane of a network: rate scale,
// release phase skew, per-link propagation skew, and failure. Assign a
// slice of these to Network.PlaneSpecs (or a planes array in the scenario
// JSON) to model asymmetric dual networks; the receiver's ARINC 664-style
// integrity checking (SimConfig.SkewMax) classifies duplicate copies as
// redundant (in-window) or discarded (out-of-window).
type PlaneSpec = topology.PlaneSpec

// AnalysisPlane describes one redundant plane for the skew-aware
// first-copy composition (see RedundantEndToEnd); Network.AnalysisPlanes
// materializes them from a network's plane specs.
type AnalysisPlane = analysis.Plane

// RedundantEndToEnd bounds every connection of a redundant network with
// all declared planes up: minimum over surviving planes of the plane's
// own tree-composed bound plus its phase skew (first copy wins).
// Scenario.Analyze applies it automatically to redundant scenarios with
// plane specs.
func RedundantEndToEnd(set *Set, a Approach, cfg AnalysisConfig, planes []AnalysisPlane) (*Result, error) {
	return analysis.RedundantEndToEnd(set, a, cfg, planes)
}

// DegradedEndToEnd bounds every connection with any ONE surviving plane
// additionally failed — the availability bound of a redundant network
// (also available as Scenario.AnalyzeDegraded).
func DegradedEndToEnd(set *Set, a Approach, cfg AnalysisConfig, planes []AnalysisPlane) (*Result, error) {
	return analysis.DegradedEndToEnd(set, a, cfg, planes)
}

// SimulateNetwork runs the workload over an arbitrary network description
// — the one engine behind Simulate, SimulateTree and the architecture
// families, honoring every SimConfig field on every topology.
func SimulateNetwork(set *Set, cfg SimConfig, topo *Network) (*SimResult, error) {
	return core.SimulateNetwork(set, cfg, topo)
}

// TopoGrid builds the topology × rate × load cross product.
func TopoGrid(fams []TopologyFamily, rates []simtime.Rate, loads []int) []TopoPoint {
	return core.TopoGrid(fams, rates, loads)
}

// RunTopoGrid cross-validates tree-composed bounds against simulation on
// every topology-grid point using the parallel scenario-sweep engine.
//
// Deprecated: RunTopoGrid is a fixed instance of the generic Experiment
// runner over the built-in families; new studies should declare their own
// Experiment binding each point to a Scenario.
func RunTopoGrid(points []TopoPoint, base SimConfig, opts SweepOptions) ([]TopoCell, error) {
	return core.RunTopoGrid(points, base, opts)
}
